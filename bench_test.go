package wdsparql_test

// One testing.B benchmark per experiment of DESIGN.md. The bench
// targets mirror the wdbench tables: run
//
//	go test -bench=. -benchmem
//
// and compare against the recorded BENCH_<n>.json series.
// Sub-benchmarks carry the swept parameter in their name (k for query
// families, n for data sizes). This file is an external test package
// so it can exercise internal/bench, which itself builds on the public
// engine API.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"wdsparql"
	"wdsparql/internal/bench"
	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/ingest"
	"wdsparql/internal/pebble"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/reduction"
)

// BenchmarkE1CoreTreewidth measures ctw computation on the Figure 1
// t-graphs (core computation + exact treewidth).
func BenchmarkE1CoreTreewidth(b *testing.B) {
	for _, k := range []int{2, 4, 6, 8} {
		s := gen.ExampleS(k)
		sp := gen.ExampleSPrime(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := core.CTW(s); got != k-1 {
					b.Fatalf("ctw(S)=%d", got)
				}
				if got := core.CTW(sp); got != 1 {
					b.Fatalf("ctw(S')=%d", got)
				}
			}
		})
	}
}

// BenchmarkE2DominationWidth measures dw(F_k) (subtree enumeration,
// GtG construction, domination search).
func BenchmarkE2DominationWidth(b *testing.B) {
	for _, k := range []int{2, 3, 4, 5} {
		f := gen.Fk(k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := core.DominationWidth(f); got != 1 {
					b.Fatalf("dw=%d", got)
				}
			}
		})
	}
}

// BenchmarkE3BoundedDW is the headline frontier benchmark: F_k
// evaluation on adversarial Turán data. The naive series grows
// exponentially in k; the pebble series stays polynomial.
func BenchmarkE3BoundedDW(b *testing.B) {
	const n = 24
	for _, k := range []int{2, 3, 4, 5} {
		f := gen.Fk(k)
		mu := gen.FkMu()
		g := gen.FkData(k, n, false, false)
		b.Run(fmt.Sprintf("naive/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !core.EvalNaive(f, g, mu) {
					b.Fatal("expected acceptance")
				}
			}
		})
		b.Run(fmt.Sprintf("pebble/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if !core.EvalPebble(1, f, g, mu) {
					b.Fatal("expected acceptance")
				}
			}
		})
	}
}

// BenchmarkE4BranchTreewidth measures the T'_k family: width
// computation and evaluation.
func BenchmarkE4BranchTreewidth(b *testing.B) {
	const n = 24
	for _, k := range []int{2, 4, 6} {
		tk := gen.TkPrime(k)
		f := ptree.Forest{tk}
		g := gen.TkPrimeData(n, k)
		mu := rdf.Mapping{"y": "b"}
		b.Run(fmt.Sprintf("bw/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := core.BranchTreewidth(tk); got != 1 {
					b.Fatalf("bw=%d", got)
				}
			}
		})
		b.Run(fmt.Sprintf("eval-pebble/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EvalPebble(1, f, g, mu)
			}
		})
		b.Run(fmt.Sprintf("eval-naive/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EvalNaive(f, g, mu)
			}
		})
	}
}

// BenchmarkE5CliqueReduction measures the Theorem 2 pipeline: instance
// construction plus co-wdEVAL, scaling in |V(H)| for fixed k. Hosts
// are deterministic pseudo-random graphs with edge density 1/2 (the
// regime of the wdbench E5 table).
func BenchmarkE5CliqueReduction(b *testing.B) {
	for _, k := range []int{2, 3} {
		for _, n := range []int{6, 9, 12} {
			h := graphalg.NewUGraph(n)
			rng := rand.New(rand.NewSource(int64(100*k + n)))
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Intn(2) == 0 {
						h.AddEdge(i, j)
					}
				}
			}
			want := graphalg.HasClique(h, k)
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					in, err := reduction.New(k, h)
					if err != nil {
						b.Fatal(err)
					}
					if got := in.SolveCliqueViaEval(); got != want {
						b.Fatalf("verdict %v, oracle %v", got, want)
					}
				}
			})
		}
	}
}

// BenchmarkE6PebbleVsHom measures the pebble test against full
// homomorphism search on K_k queries over clique-free Turán graphs
// (the refutation case, where backtracking explodes).
func BenchmarkE6PebbleVsHom(b *testing.B) {
	const n = 15
	for _, k := range []int{3, 4, 5} {
		pat := hom.NewTGraph(gen.KkTriples(k)...)
		gt := hom.NewGTGraph(pat, nil)
		g := gen.Turan(n, k-1, "r")
		b.Run(fmt.Sprintf("hom/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if hom.Exists(pat, g) {
					b.Fatal("Turán graph has no k-clique")
				}
			}
		})
		b.Run(fmt.Sprintf("pebble2/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pebble.Decide(2, gt, rdf.NewMapping(), g)
			}
		})
	}
}

// BenchmarkE7DataScaling sweeps |G| for the fixed F_3 query.
func BenchmarkE7DataScaling(b *testing.B) {
	const k = 3
	f := gen.Fk(k)
	mu := gen.FkMu()
	for _, n := range []int{12, 24, 48, 96} {
		g := gen.FkData(k, n, false, false)
		b.Run(fmt.Sprintf("naive/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EvalNaive(f, g, mu)
			}
		})
		b.Run(fmt.Sprintf("pebble/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EvalPebble(1, f, g, mu)
			}
		})
	}
}

// BenchmarkMatchMappings measures the base-case evaluation ⟦t⟧G on a
// medium random graph, across the pattern shapes that exercise each
// positional index (bound predicate, fully unbound, repeated
// variable). Tracks the dictionary-encoding speedup of the ID-native
// storage layer.
func BenchmarkMatchMappings(b *testing.B) {
	g := gen.Random(256, 4096, 4, 11)
	pats := []rdf.Triple{
		rdf.T(rdf.Var("s"), rdf.IRI("p0"), rdf.Var("o")),
		rdf.T(rdf.Var("s"), rdf.Var("p"), rdf.Var("o")),
		rdf.T(rdf.Var("s"), rdf.IRI("p1"), rdf.Var("s")),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range pats {
			benchSink = g.MatchMappings(p)
		}
	}
}

var benchSink []rdf.Mapping

// BenchmarkEvalAll measures the batched evaluation entry point on the
// E8 workload (one candidate mapping per p-edge, F_3 query), loop vs
// EvalAll vs EvalAll with a worker pool.
func BenchmarkEvalAll(b *testing.B) {
	const k, n = 3, 24
	f := gen.Fk(k)
	g := bench.E8Data(k, n)
	root := ptree.NewSubtree(f[0], f[0].Root.ID)
	mus := hom.FindAll(root.Pattern(), g, 0)
	if len(mus) == 0 {
		b.Fatal("no candidate mappings")
	}
	for _, alg := range []core.Algorithm{core.AlgNaive, core.AlgPebble} {
		b.Run(fmt.Sprintf("%s/loop", alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, mu := range mus {
					core.Eval(alg, 1, f, g, mu)
				}
			}
		})
		b.Run(fmt.Sprintf("%s/batch", alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EvalAll(alg, 1, f, g, mus)
			}
		})
		b.Run(fmt.Sprintf("%s/parallel", alg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.EvalAllParallel(alg, 1, f, g, mus, 4)
			}
		})
	}
}

// BenchmarkE9TopDownEnum measures top-down enumeration of ⟦T⟧G on the
// E9 workload (AND/OPT-dominated tree, Erdős–Rényi data): the string
// pipeline (EnumerateTopDown on map mappings, the pre-row baseline)
// against the compiled row pipeline, sequential and on a worker pool.
// The headline numbers for the enumeration layer: time/op and
// allocs/op of string vs rows in the same run.
func BenchmarkE9TopDownEnum(b *testing.B) {
	tr := bench.E9Tree()
	f := ptree.Forest{tr}
	g := bench.E9Data(128)
	want := core.EnumerateTopDown(tr, g).Len()
	if want == 0 {
		b.Fatal("empty E9 workload")
	}
	b.Run("string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if core.EnumerateTopDown(tr, g).Len() != want {
				b.Fatal("solution count changed")
			}
		}
	})
	b.Run("rows", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if core.EnumerateTopDownForestID(f, g).Len() != want {
				b.Fatal("solution count changed")
			}
		}
	})
	b.Run("rows-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if core.EnumerateTopDownParallel(f, g, 4).Len() != want {
				b.Fatal("solution count changed")
			}
		}
	})
	// The decode-at-the-boundary shim serving the string signature.
	b.Run("rows-decoded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if core.EnumerateTopDownForest(f, g).Len() != want {
				b.Fatal("solution count changed")
			}
		}
	})
}

// BenchmarkE10PreparedVsOneShot measures the prepare/execute split on
// the E9 enumeration workload: the deprecated one-shot Solutions
// (which re-builds an engine and re-compiles the forest against the
// graph on every call) against a PreparedQuery executed repeatedly —
// materialising (All), zero-decode counting (Rows via Count), and a
// first-page fetch (Limit). The headline numbers for the engine layer:
// prepared execution must beat one-shot on repeated-query workloads.
func BenchmarkE10PreparedVsOneShot(b *testing.B) {
	ctx := context.Background()
	p := wdsparql.MustParsePattern(bench.E10PatternText)
	g := bench.E9Data(128)
	q, err := wdsparql.NewEngine(g).Prepare(p)
	if err != nil {
		b.Fatal(err)
	}
	want, err := q.Count(ctx)
	if err != nil || want == 0 {
		b.Fatalf("empty E10 workload: %d, %v", want, err)
	}
	b.Run("oneshot-solutions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			set, err := wdsparql.Solutions(p, g)
			if err != nil || set.Len() != want {
				b.Fatalf("solution count changed: %d, %v", set.Len(), err)
			}
		}
	})
	b.Run("prepared-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			set, err := q.All(ctx)
			if err != nil || set.Len() != want {
				b.Fatalf("solution count changed: %d, %v", set.Len(), err)
			}
		}
	})
	b.Run("prepared-count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := q.Count(ctx)
			if err != nil || n != want {
				b.Fatalf("solution count changed: %d, %v", n, err)
			}
		}
	})
	b.Run("prepared-first-page", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n, err := q.Count(ctx, wdsparql.Limit(10))
			if err != nil || n != 10 {
				b.Fatalf("page size changed: %d, %v", n, err)
			}
		}
	})
}

// BenchmarkE11FrozenBackend measures the frozen CSR storage backend
// against the construction-time map backend on identical triple sets
// (the E9 Erdős–Rényi shape at |G| = 65536): cold load (incremental
// map construction vs counting-pass bulk load), MatchCountID probe
// throughput over the full index-shape mix with full key diversity,
// MatchID materialisation (the frozen backend returns zero-copy arena
// ranges), and top-down enumeration. The headline numbers for the
// storage layer: frozen count/match must beat the map backend with
// fewer allocs/op.
func BenchmarkE11FrozenBackend(b *testing.B) {
	ts := bench.E11Triples(16384)
	gm := rdf.GraphOf(ts...)
	gf := rdf.GraphFromTriples(ts)
	if gm.Len() != gf.Len() {
		b.Fatalf("backend twins diverge: %d vs %d", gm.Len(), gf.Len())
	}
	countProbes := bench.E11Probes(gm, 0)
	matchProbes := bench.E11Probes(gm, 512)
	b.Run("coldload/map", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rdf.GraphOf(ts...).Len() != gm.Len() {
				b.Fatal("load changed")
			}
		}
	})
	b.Run("coldload/bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rdf.GraphFromTriples(ts).Len() != gm.Len() {
				b.Fatal("load changed")
			}
		}
	})
	want := 0
	for _, p := range countProbes {
		want += gm.MatchCountID(p)
	}
	for _, tc := range []struct {
		name string
		g    *rdf.Graph
	}{{"count/map", gm}, {"count/frozen", gf}} {
		g := tc.g
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				for _, p := range countProbes {
					n += g.MatchCountID(p)
				}
				if n != want {
					b.Fatalf("count drift: %d != %d", n, want)
				}
			}
		})
	}
	for _, tc := range []struct {
		name string
		g    *rdf.Graph
	}{{"match/map", gm}, {"match/frozen", gf}} {
		g := tc.g
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				for _, p := range matchProbes {
					n += len(g.MatchID(p))
				}
				if n == 0 {
					b.Fatal("empty match workload")
				}
			}
		})
	}
	f := ptree.Forest{bench.E9Tree()}
	rows := core.EnumerateTopDownForestID(f, gm).Len()
	for _, tc := range []struct {
		name string
		g    *rdf.Graph
	}{{"enum/map", gm}, {"enum/frozen", gf}} {
		g := tc.g
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if core.EnumerateTopDownForestID(f, g).Len() != rows {
					b.Fatal("solution count changed")
				}
			}
		})
	}
}

// BenchmarkE12ShardedBackend measures the sharded storage backend
// against the frozen backend on identical triple sets (the E9 shape at
// |G| = 65536), per shard count: bulk load into shards, MatchCountID
// over the full index-shape mix (cross-shard counts are sums, no
// merge), MatchID over the solver-realistic materialisation mix
// (subject-bound, two-key and ground probes — the shapes the
// fail-first loop materialises), the cross-shard single-key merge on
// its own (the disclosed price of the partition), and top-down
// enumeration. The headline numbers for the sharding layer: selective
// probes at parity with frozen, streams byte-identical.
func BenchmarkE12ShardedBackend(b *testing.B) {
	ts := bench.E11Triples(16384)
	gf := rdf.GraphFromTriples(ts)
	countProbes := bench.E11Probes(gf, 0)
	matchProbes := bench.E12MatchProbes(gf, 512)
	mergeProbes := bench.E12MergeProbes(gf, 128)
	wantCount := 0
	for _, p := range countProbes {
		wantCount += gf.MatchCountID(p)
	}
	f := ptree.Forest{bench.E9Tree()}
	rows := core.EnumerateTopDownForestID(f, gf).Len()
	// Cold load first, before the probe twins exist: a heap full of
	// retained backends would tax the load loop with GC scan work that
	// has nothing to do with loading.
	b.Run("coldload/sharded-4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if rdf.GraphFromTriplesSharded(ts, 4).Len() != gf.Len() {
				b.Fatal("load changed")
			}
		}
	})
	graphs := []struct {
		name string
		g    *rdf.Graph
	}{{"frozen", gf}}
	for _, m := range []int{1, 2, 4} {
		graphs = append(graphs, struct {
			name string
			g    *rdf.Graph
		}{fmt.Sprintf("sharded-%d", m), rdf.GraphFromTriplesSharded(ts, m)})
	}
	for _, tc := range graphs {
		g := tc.g
		b.Run("count/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				for _, p := range countProbes {
					n += g.MatchCountID(p)
				}
				if n != wantCount {
					b.Fatalf("count drift: %d != %d", n, wantCount)
				}
			}
		})
		b.Run("match/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				for _, p := range matchProbes {
					n += len(g.MatchID(p))
				}
				if n == 0 {
					b.Fatal("empty match workload")
				}
			}
		})
		b.Run("merge/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				for _, p := range mergeProbes {
					n += len(g.MatchID(p))
				}
				if n == 0 {
					b.Fatal("empty merge workload")
				}
			}
		})
		b.Run("enum/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if core.EnumerateTopDownForestID(f, g).Len() != rows {
					b.Fatal("solution count changed")
				}
			}
		})
	}
}

// BenchmarkMicroHomSolver measures the raw homomorphism solver on
// path queries (ablation baseline for the join-ordering heuristic).
func BenchmarkMicroHomSolver(b *testing.B) {
	g := gen.Random(64, 512, 2, 7)
	var pats []rdf.Triple
	for i := 0; i < 4; i++ {
		pats = append(pats, rdf.T(rdf.Var(fmt.Sprintf("v%d", i)), rdf.IRI("p0"), rdf.Var(fmt.Sprintf("v%d", i+1))))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hom.Exists(pats, g)
	}
}

// BenchmarkMicroPebbleClosure measures one pebble-game closure on a
// medium instance (ablation baseline for the deletion propagation).
func BenchmarkMicroPebbleClosure(b *testing.B) {
	pat := hom.NewTGraph(gen.KkTriples(4)...)
	gt := hom.NewGTGraph(pat, nil)
	g := gen.Turan(18, 3, "r")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pebble.Decide(2, gt, rdf.NewMapping(), g)
	}
}

// BenchmarkE13Serving measures the serving layer end to end: real HTTP
// requests against a wdserve endpoint streaming the E10 workload
// (request/* sub-benchmarks, one GET + full decode per iteration, per
// engine mode), and an overload cell (64-client herd against a gate of
// 8 with a short bounded queue) whose reported metrics are the point:
// shed% — the fraction refused with a fast 503 — and p99_ms, the tail
// latency of the requests actually served, bounded by gate depth ×
// service time instead of growing with the herd.
func BenchmarkE13Serving(b *testing.B) {
	ts := bench.E9Data(128).Triples()
	wantRows := func(eng *wdsparql.Engine, text string, opts ...wdsparql.ExecOption) int {
		q, err := eng.PrepareText(text)
		if err != nil {
			b.Fatal(err)
		}
		n, err := q.Count(context.Background(), opts...)
		if err != nil || n == 0 {
			b.Fatalf("empty serving workload: %d, %v", n, err)
		}
		return n
	}
	modes := []struct {
		name   string
		graph  *rdf.Graph
		params map[string][]string
	}{
		{"sequential", rdf.GraphFromTriples(ts), nil},
		{"parallel-4", rdf.GraphFromTriples(ts), map[string][]string{"workers": {"4"}}},
		{"sharded-4", rdf.GraphFromTriplesSharded(ts, 4), nil},
	}
	for _, m := range modes {
		eng := wdsparql.NewEngine(m.graph, wdsparql.WithQueryCache(16))
		want := wantRows(eng, bench.E13QueryText, wdsparql.Limit(bench.E13RowLimit))
		b.Run("request/"+m.name, func(b *testing.B) {
			base, stop, err := bench.E13StartServer(eng, 8, 16, time.Second)
			if err != nil {
				b.Fatal(err)
			}
			defer stop()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cell := bench.E13Load(base, 1, 1, m.params, want)
				if cell.OK != 1 || !cell.Agree {
					b.Fatalf("bad response: %+v", cell)
				}
			}
		})
	}
	b.Run("overload", func(b *testing.B) {
		eng := wdsparql.NewEngine(rdf.GraphFromTriples(ts), wdsparql.WithQueryCache(16))
		want := wantRows(eng, bench.E13OverloadQueryText,
			wdsparql.Limit(bench.E13RowLimit), wdsparql.Offset(bench.E13OverloadOffset))
		base, stop, err := bench.E13StartServer(eng, 8, 8, 25*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		defer stop()
		var ok, shed, errs int
		var p99 time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cell := bench.E13Load(base, 64, 1, map[string][]string{
				"query":  {bench.E13OverloadQueryText},
				"offset": {fmt.Sprint(bench.E13OverloadOffset)},
			}, want)
			if !cell.Agree || cell.Errors > 0 {
				b.Fatalf("overload cell disagrees: %+v", cell)
			}
			ok += cell.OK
			shed += cell.Shed
			if p := cell.Percentile(0.99); p > p99 {
				p99 = p
			}
		}
		b.StopTimer()
		if shed == 0 {
			b.Fatal("overload cell shed nothing: admission never engaged")
		}
		b.ReportMetric(float64(shed)/float64(ok+shed+errs)*100, "shed%")
		b.ReportMetric(float64(p99.Milliseconds()), "p99_ms")
	})
}

// BenchmarkE14SnapshotColdStart measures cold start to the first query
// row on the E9 shape at |G| = 65536, per startup path: re-parsing the
// N-Triples text (interning + index rebuild), loading the checksummed
// snapshot image into the heap (read + CRC validation, zero parse),
// and mmapping it (load cost independent of graph size — the pages the
// first query needs fault in on demand). Every iteration is a genuine
// cold start: graph construction, engine, prepare, and one row.
func BenchmarkE14SnapshotColdStart(b *testing.B) {
	g := rdf.GraphFromTriples(bench.E11Triples(16384))
	dir := b.TempDir()
	ntPath := filepath.Join(dir, "g.nt")
	snapPath := filepath.Join(dir, "g.wdsnap")
	f, err := os.Create(ntPath)
	if err != nil {
		b.Fatal(err)
	}
	if err := rdf.WriteGraph(f, g); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	if err := g.WriteSnapshot(snapPath); err != nil {
		b.Fatal(err)
	}

	firstRow := func(b *testing.B, g *rdf.Graph) {
		b.Helper()
		q, err := wdsparql.NewEngine(g).PrepareText(bench.E14QueryText)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for range q.Rows(context.Background(), wdsparql.Limit(1)) {
			rows++
		}
		if rows != 1 {
			b.Fatalf("first row not produced: %d", rows)
		}
	}
	b.Run("parse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f, err := os.Open(ntPath)
			if err != nil {
				b.Fatal(err)
			}
			g, err := rdf.ReadGraph(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			firstRow(b, g)
		}
	})
	for _, mode := range []rdf.SnapshotMode{rdf.SnapshotHeap, rdf.SnapshotMmap} {
		b.Run("load-"+mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				snap, err := rdf.LoadSnapshot(snapPath, mode)
				if err != nil {
					b.Fatal(err)
				}
				firstRow(b, snap.Graph())
				snap.Close()
			}
		})
	}
}

// BenchmarkE15Ingest measures the live-data path on the E9 shape at
// |G| = 65536: the parallel streaming ingest pipeline against the
// sequential reader on the same N-Triples bytes (sequential/parallel/
// parallel-sharded), and enumeration with the last tenth of the graph
// in the mutable delta overlay versus fully frozen versus refrozen.
func BenchmarkE15Ingest(b *testing.B) {
	ts := bench.E11Triples(16384)
	var sb []byte
	{
		g := rdf.GraphFromTriples(ts)
		var buf bytes.Buffer
		if err := rdf.WriteGraph(&buf, g); err != nil {
			b.Fatal(err)
		}
		sb = buf.Bytes()
	}

	b.Run("parse-sequential", func(b *testing.B) {
		b.SetBytes(int64(len(sb)))
		for i := 0; i < b.N; i++ {
			if _, err := rdf.ReadGraph(bytes.NewReader(sb)); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("ingest-w%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(sb)))
			for i := 0; i < b.N; i++ {
				if _, err := ingest.Load(bytes.NewReader(sb), ingest.Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("ingest-sharded3", func(b *testing.B) {
		b.SetBytes(int64(len(sb)))
		for i := 0; i < b.N; i++ {
			if _, err := ingest.Load(bytes.NewReader(sb), ingest.Options{Workers: 4, Shards: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})

	cut := len(ts) - len(ts)/10
	frozen := wdsparql.NewEngine(rdf.GraphFromTriples(ts))
	overlay := wdsparql.NewEngine(rdf.GraphFromTriples(ts[:cut])).ApplyDelta(ts[cut:])
	refrozen := overlay.Refreeze()
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		eng  *wdsparql.Engine
	}{{"enum-frozen", frozen}, {"enum-overlay10pct", overlay}, {"enum-refrozen", refrozen}} {
		b.Run(tc.name, func(b *testing.B) {
			q, err := tc.eng.PrepareText(bench.E15QueryText)
			if err != nil {
				b.Fatal(err)
			}
			want := -1
			for i := 0; i < b.N; i++ {
				n, err := q.Count(ctx)
				if err != nil {
					b.Fatal(err)
				}
				if want == -1 {
					want = n
				} else if n != want {
					b.Fatalf("row count changed: %d vs %d", n, want)
				}
			}
			b.ReportMetric(float64(want), "rows")
		})
	}

	b.Run("apply-delta-batch1000", func(b *testing.B) {
		base := wdsparql.NewEngine(rdf.GraphFromTriples(ts[:cut]))
		batch := ts[cut:min(cut+1000, len(ts))]
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := base.ApplyDelta(batch); e.OverlayLen() == 0 {
				b.Fatal("delta not applied")
			}
		}
	})
}

// BenchmarkE16Planner measures the compile-time query planner through
// the public engine on the E9/E10 workload: the ordered enumeration
// (planner on runs the complete-dead-detection planned mode, stream
// byte-identical to planner off) and the order-free Count (planner on
// runs strict plan-following). The wdbench E16 table carries the
// search-node and probe counters; this benchmark tracks the wall-time
// side under `go test -bench`.
func BenchmarkE16Planner(b *testing.B) {
	g := bench.E9Data(4096)
	ctx := context.Background()
	for _, cfg := range []struct {
		name string
		opts []wdsparql.Option
	}{
		{"on", nil},
		{"off", []wdsparql.Option{wdsparql.WithPlanner(false)}},
	} {
		q, err := wdsparql.NewEngine(g, cfg.opts...).PrepareText(bench.E10PatternText)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("enum/planner-"+cfg.name, func(b *testing.B) {
			want := -1
			for i := 0; i < b.N; i++ {
				n := 0
				for range q.Rows(ctx) {
					n++
				}
				if want == -1 {
					want = n
				} else if n != want {
					b.Fatalf("row count changed: %d vs %d", n, want)
				}
			}
			b.ReportMetric(float64(want), "rows")
		})
		b.Run("count/planner-"+cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Count(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE17FilterPushdown measures the bind-time filter pushdown
// against all-deferred evaluation through the public engine API: a
// selective equality filter over the E10 optional chain, plain and
// under a projected DISTINCT.
func BenchmarkE17FilterPushdown(b *testing.B) {
	g := bench.E9Data(4096)
	ctx := context.Background()
	hub := bench.E17Hub(g)
	queries := []struct{ name, text string }{
		{"eq-filter", `(` + bench.E10PatternText + ` FILTER ?y = ` + hub + `)`},
		{"sel-distinct", `SELECT DISTINCT ?y WHERE (` + bench.E10PatternText + ` FILTER NOT ?y = ` + hub + `)`},
	}
	for _, w := range queries {
		for _, cfg := range []struct {
			name string
			opts []wdsparql.Option
		}{
			{"on", nil},
			{"off", []wdsparql.Option{wdsparql.WithFilterPushdown(false)}},
		} {
			q, err := wdsparql.NewEngine(g, cfg.opts...).PrepareText(w.text)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(w.name+"/pushdown-"+cfg.name, func(b *testing.B) {
				want := -1
				for i := 0; i < b.N; i++ {
					n := 0
					for range q.Rows(ctx) {
						n++
					}
					if want == -1 {
						want = n
					} else if n != want {
						b.Fatalf("row count changed: %d vs %d", n, want)
					}
				}
				b.ReportMetric(float64(want), "rows")
			})
		}
	}
}
