package wdsparql

// This file is the prepared-query engine: the production entry point
// of the package. An Engine captures a graph plus engine-wide options;
// Prepare runs every graph-pattern-independent static analysis exactly
// once (well-designedness check, wdpf translation, row-program
// compilation over one shared slot layout) and returns an immutable,
// goroutine-safe PreparedQuery whose execution methods expose the full
// pipeline tiered by cost:
//
//	q.Rows(ctx)    — zero-decode ID-native rows (hot callers)
//	q.Select(ctx)  — streaming Mappings, decoded at the boundary
//	q.Count(ctx)   — cardinality of ⟦P⟧G without decoding
//	q.All(ctx)     — materialising convenience (a MappingSet)
//	q.Ask(ctx, µ)  — wdEVAL via the engine's algorithm
//
// Limit/Offset/Parallel are per-call ExecOptions riding the
// early-terminating row iterator; cancellation of ctx stops any of the
// streams (and all parallel workers) at the next yield boundary. See
// DESIGN.md for the full API contract.

import (
	"context"
	"fmt"
	"iter"
	"sync"

	"wdsparql/internal/core"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Row is a solution mapping in flat ID-native form: Row[s] is the
// TermID bound to the variable with slot s of the query's SlotLayout,
// or Unbound. Rows yielded by PreparedQuery.Rows alias the working row
// of the enumeration — valid only during the yield; Clone to retain.
type Row = rdf.Row

// SlotLayout maps the variables of one prepared query to the dense
// slots of its rows. A prepared query's layout is read-only.
type SlotLayout = rdf.SlotLayout

// Unbound marks an unbound slot in a Row.
const Unbound = rdf.Unbound

// Engine evaluates prepared queries against one RDF graph. It captures
// the graph plus the engine-wide execution options; the zero cost of a
// query re-run is the whole point — Prepare once, execute many.
//
// An Engine is immutable after NewEngine and safe for concurrent use.
// The graph must not be mutated while the engine is in use (the same
// constraint the underlying read paths already impose).
type Engine struct {
	g        *rdf.Graph
	alg      core.Algorithm
	pebbleK  int
	workers  int
	shards   int
	planner  bool
	slack    int
	pushdown bool

	qcacheCap int
	qcache    *lruCache[*PreparedQuery] // nil when WithQueryCache is off
}

// Option configures an Engine.
type Option func(*Engine)

// WithAlgorithm selects the wdEVAL decision algorithm used by Ask:
// AlgNaive (Lemma 1 homomorphism tests, the default) or AlgPebble
// (the Theorem 1 polynomial-time algorithm).
func WithAlgorithm(a Algorithm) Option { return func(e *Engine) { e.alg = a } }

// WithPebbleK sets the domination-width bound k ≥ 1 used by AlgPebble
// (correctness is guaranteed when dw(P) ≤ k). The default is 1; Ask
// reports an error for a pebble engine configured with k < 1.
func WithPebbleK(k int) Option { return func(e *Engine) { e.pebbleK = k } }

// WithWorkers sets the default worker-pool size for enumeration; the
// per-call Parallel ExecOption overrides it. The default is 1
// (sequential).
func WithWorkers(n int) Option { return func(e *Engine) { e.workers = n } }

// WithQueryCache equips the engine with an LRU cache of up to n
// prepared queries keyed by the exact query text — the seam
// PrepareText (and the HTTP endpoint riding it) uses so a repeated
// query skips parsing, static analysis and compilation entirely. Hot
// queries stay resident; one-off queries age out. n ≤ 0 disables the
// cache (the default).
func WithQueryCache(n int) Option { return func(e *Engine) { e.qcacheCap = n } }

// WithPlanner turns the compile-time query planner on or off for the
// whole engine (default on); the per-call Planner ExecOption overrides
// it. With the planner on, ordered executions (Rows, Select, All) run
// with complete dead-branch detection — streams stay byte-identical to
// planner-off, never fewer nor reordered rows, by the mode contract in
// internal/hom — and order-free executions (Count) follow the compiled
// join order with one count probe per search node.
func WithPlanner(on bool) Option { return func(e *Engine) { e.planner = on } }

// WithPlannerSlack sets the planner's adaptive escape hatch: an
// order-following search node re-scores all remaining patterns when
// the actual candidate count exceeds slack × max(1, estimate). k ≤ 0
// selects the default (hom.DefaultSlack).
func WithPlannerSlack(k int) Option { return func(e *Engine) { e.slack = k } }

// WithFilterPushdown turns bind-time FILTER pushdown on or off for the
// whole engine (default on). With pushdown on, FILTER conjuncts whose
// variables are all in scope at one wdPT node are evaluated inside that
// node's search the moment their last variable binds, pruning the
// branch before recursion; off, every conjunct is evaluated per emitted
// subtree solution. The row stream is byte-identical either way (a
// filtered stream is a subsequence of the unfiltered one in both
// placements); only the search effort changes. Off exists for
// cross-validation and ablation (wdfuzz, the E17 experiment).
func WithFilterPushdown(on bool) Option { return func(e *Engine) { e.pushdown = on } }

// WithShards seals the engine's graph into the sharded storage backend
// with n shards (rdf.Graph.Shard) instead of the single-arena frozen
// backend: triples partition by subject hash, each shard is its own
// frozen CSR view, and parallel enumeration hands out work grouped by
// shard. Results are byte-identical to every other backend; n ≤ 1
// keeps the default Freeze. Pairs naturally with WithWorkers.
func WithShards(n int) Option { return func(e *Engine) { e.shards = n } }

// NewEngine returns an engine over the graph. A nil graph is replaced
// by an empty one — useful for purely static analysis (widths, certain
// variables) where no data is involved.
//
// NewEngine seals the graph into a compact read-only backend: engines
// only read, so every prepared query runs on O(1) array probes and
// galloping range searches instead of map lookups. By default the
// graph is frozen (rdf.Graph.Freeze); with WithShards(n) for n ≥ 2 it
// is sharded instead (rdf.Graph.Shard) — both are idempotent and
// preserve result content and order exactly. Note that sealing
// happens in place on the caller's graph (a later mutation of the
// graph transparently thaws it, under the existing rule that the
// graph must not change while the engine is in use).
func NewEngine(g *Graph, opts ...Option) *Engine {
	if g == nil {
		g = rdf.NewGraph()
	}
	e := &Engine{g: g, alg: core.AlgNaive, pebbleK: 1, workers: 1, planner: true, pushdown: true}
	for _, o := range opts {
		o(e)
	}
	e.qcache = newLRUCache[*PreparedQuery](e.qcacheCap)
	if e.shards > 1 {
		g.Shard(e.shards)
	} else if !g.Sharded() {
		// Freeze by default, but keep a graph the caller already
		// sharded (GraphFromTriplesSharded, Graph.Shard): re-freezing
		// would silently discard the shard build and the caller's
		// backend choice — the results are identical either way.
		g.Freeze()
	}
	return e
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Prepare runs the static analysis of the pattern once — the
// well-designedness check, the wdpf translation, and the compilation
// of every tree into row programs over one shared slot layout — and
// returns a reusable PreparedQuery. The widths (domination, branch,
// local) and the certain variables are computed lazily on first access
// and cached; everything else is paid here, never again per execution.
//
// Prepare fails exactly when the pattern is not well-designed (for a
// SELECT query: its WHERE pattern, with every FILTER safe and every
// projected variable occurring in the pattern).
func (e *Engine) Prepare(p Pattern) (*PreparedQuery, error) {
	an, err := analyze(p)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{eng: e, an: an, prog: e.compile(an)}, nil
}

// compile lowers an analysis onto the engine's graph: the forest
// compiles under the engine's pushdown setting, and a SELECT wrapper
// becomes a projection view (SELECT * without DISTINCT is the identity
// and compiles away).
func (e *Engine) compile(an *analysis) *core.ForestProgram {
	prog := core.CompileForestOpts(an.forest, e.g, core.CompileOpts{NoFilterPushdown: !e.pushdown})
	if an.sel && (an.distinct || len(an.proj) > 0) {
		prog = prog.Project(an.proj, an.distinct)
	}
	return prog
}

// PrepareText parses src as a graph pattern and prepares it,
// memoised in the engine's query cache (WithQueryCache) under the
// exact query text. On a hit the prepared query is returned without
// touching the parser; on a miss the query is parsed, analysed,
// compiled and cached. Errors — parse failures as well as
// non-well-designed patterns — are never cached, so a malformed
// request cannot occupy (or poison) a cache slot. Without
// WithQueryCache, PrepareText is plain parse-then-Prepare.
func (e *Engine) PrepareText(src string) (*PreparedQuery, error) {
	if q, ok := e.qcache.get(src); ok {
		return q, nil
	}
	p, err := sparql.Parse(src)
	if err != nil {
		return nil, err
	}
	q, err := e.Prepare(p)
	if err != nil {
		return nil, err
	}
	return e.qcache.add(src, q), nil
}

// QueryCacheStats reports the hit/miss counters and occupancy of the
// engine's PrepareText cache; all-zero when WithQueryCache is not
// configured.
func (e *Engine) QueryCacheStats() CacheStats { return e.qcache.cacheStats() }

// MustPrepare is Prepare panicking on error.
func (e *Engine) MustPrepare(p Pattern) *PreparedQuery {
	q, err := e.Prepare(p)
	if err != nil {
		panic(err)
	}
	return q
}

// PrepareForest prepares an already-translated wdPF, skipping the
// pattern-level analysis. Pattern() of the result is nil.
func (e *Engine) PrepareForest(f Forest) *PreparedQuery {
	an := &analysis{forest: f}
	return &PreparedQuery{eng: e, an: an, prog: e.compile(an)}
}

// PreparedQuery is a query compiled against an engine's graph. It is
// immutable and safe for concurrent use: any number of goroutines may
// run Select/Rows/Count/All/Ask on the same PreparedQuery at once —
// every execution carries its own scratch state, and the lazily-cached
// static measures are computed under sync.Once.
type PreparedQuery struct {
	eng  *Engine
	an   *analysis
	prog *core.ForestProgram
}

// analysis is the graph-independent static analysis of one pattern:
// its forest plus the lazily-cached width measures and certain
// variables. It is shared — between a PreparedQuery and the legacy
// shims, and across engines preparing the same pattern — so the
// exponential width computations run at most once per pattern.
type analysis struct {
	pattern sparql.Pattern // nil when prepared from a forest
	forest  ptree.Forest

	// SELECT wrapper, unwrapped before the wdpf translation: the
	// projected variable names in declared order (nil for SELECT *)
	// and the DISTINCT flag. sel distinguishes a bare pattern from a
	// SELECT query.
	sel      bool
	proj     []string
	distinct bool

	dwOnce sync.Once
	dw     int

	bwOnce sync.Once
	bw     int
	bwErr  error

	lwOnce sync.Once
	lw     int

	cvOnce sync.Once
	cv     []rdf.Term
}

// analysisCache memoises static analyses across legacy-shim calls and
// engines, keyed by the pattern's canonical text. An LRU: hot patterns
// stay resident across any workload length, cold ones age out instead
// of permanently occupying the bound.
var analysisCache = newLRUCache[*analysis](analysisCacheMax)

const analysisCacheMax = 256

// analyze is the one shared prepare path: every public entry point
// that accepts a Pattern — Engine.Prepare and all the legacy shims —
// funnels through here, so the forest of a given pattern is built once
// even when legacy code calls Solutions, LocalWidth and CertainVars
// back to back.
func analyze(p Pattern) (*analysis, error) {
	key := sparql.Format(p)
	if an, ok := analysisCache.get(key); ok {
		return an, nil
	}
	an := &analysis{pattern: p}
	inner := p
	if s, ok := p.(sparql.Select); ok {
		// Validate the full query here — the wdpf translation below
		// only sees the WHERE pattern, and the projection check
		// (projected vars occur in the pattern) lives in the full
		// check. Then unwrap: projection and DISTINCT are execution
		// concerns, not forest structure.
		if err := sparql.CheckWellDesigned(p); err != nil {
			return nil, err
		}
		an.sel = true
		an.distinct = s.Distinct
		for _, v := range s.Vars {
			an.proj = append(an.proj, v.Value)
		}
		inner = s.Where
	}
	f, err := ptree.WDPF(inner)
	if err != nil {
		return nil, err
	}
	an.forest = f
	// add returns the first stored analysis when a concurrent first
	// analysis won the race: every caller adopts one shared analysis,
	// so its exponential width computations run at most once.
	return analysisCache.add(key, an), nil
}

// The lazily-cached static measures live here, on the shared analysis,
// so the PreparedQuery methods and the legacy shims populate the same
// sync.Onces with the same bodies.

func (an *analysis) dominationWidth() int {
	an.dwOnce.Do(func() { an.dw = core.DominationWidth(an.forest) })
	return an.dw
}

func (an *analysis) branchTreewidth() (int, error) {
	an.bwOnce.Do(func() {
		if len(an.forest) != 1 {
			an.bwErr = fmt.Errorf("wdsparql: branch treewidth is defined for UNION-free patterns; forest has %d trees", len(an.forest))
			return
		}
		an.bw = core.BranchTreewidth(an.forest[0])
	})
	return an.bw, an.bwErr
}

func (an *analysis) localWidth() int {
	an.lwOnce.Do(func() { an.lw = core.LocalWidth(an.forest) })
	return an.lw
}

func (an *analysis) certainVars() []rdf.Term {
	an.cvOnce.Do(func() { an.cv = ptree.CertainVarsForest(an.forest) })
	return an.cv
}

// Pattern returns the prepared pattern, or nil when the query was
// prepared from a forest.
func (q *PreparedQuery) Pattern() Pattern { return q.an.pattern }

// Forest returns the query's well-designed pattern forest. Callers
// must not mutate it.
func (q *PreparedQuery) Forest() Forest { return q.an.forest }

// Layout returns the slot layout shared by all rows of the query.
func (q *PreparedQuery) Layout() *SlotLayout { return q.prog.Layout() }

// DominationWidth returns dw(P) (Definition 2), computed on first call
// and cached. Exponential in |P| — a static property of the query.
func (q *PreparedQuery) DominationWidth() int { return q.an.dominationWidth() }

// BranchTreewidth returns bw(P) (Definition 3), defined for UNION-free
// patterns (single-tree forests); by Proposition 5 it equals dw(P)
// there. Computed on first call and cached.
func (q *PreparedQuery) BranchTreewidth() (int, error) { return q.an.branchTreewidth() }

// LocalWidth returns the local-tractability width of Letelier et al.,
// computed on first call and cached.
func (q *PreparedQuery) LocalWidth() int { return q.an.localWidth() }

// CertainVars returns the variables bound in every solution over every
// graph, computed on first call and cached. Callers must not mutate
// the returned slice.
func (q *PreparedQuery) CertainVars() []Term { return q.an.certainVars() }

// ExecOption configures one execution of a prepared query.
type ExecOption func(*execConfig)

type execConfig struct {
	limit   int // < 0: unlimited
	offset  int
	workers int
	planner int8 // 0: engine default, plannerOn / plannerOff: forced
}

const (
	plannerOn  int8 = 1
	plannerOff int8 = 2
)

// Limit caps the number of solutions streamed (or materialised) by the
// call; the enumeration stops as soon as the cap is reached. Limit(0)
// yields no solutions; a negative n means unlimited (the default).
func Limit(n int) ExecOption { return func(c *execConfig) { c.limit = n } }

// Offset skips the first n solutions of the stream. Combined with
// Limit this is the classic pagination pair: the stream still stops
// early after offset+limit solutions, never materialising the rest.
func Offset(n int) ExecOption { return func(c *execConfig) { c.offset = n } }

// Planner overrides the engine-wide WithPlanner setting for this call.
// The row stream is identical either way (the determinism contract);
// only the search effort changes.
func Planner(on bool) ExecOption {
	return func(c *execConfig) {
		if on {
			c.planner = plannerOn
		} else {
			c.planner = plannerOff
		}
	}
}

// Parallel runs the enumeration on a pool of n workers, partitioned
// across root-homomorphism rows. The stream is identical to the
// sequential one (same solutions, same order); n ≤ 1 is sequential.
// Overrides the engine-wide WithWorkers default for this call.
func Parallel(n int) ExecOption { return func(c *execConfig) { c.workers = n } }

func (q *PreparedQuery) config(opts []ExecOption) execConfig {
	cfg := execConfig{limit: -1, offset: 0, workers: q.eng.workers}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// tunedProg resolves the execution's search mode from the engine-wide
// planner setting and the per-call override. Ordered executions run
// ModePlanned (stream byte-identical to the heuristic); order-free
// ones — Count, whose result is invariant under enumeration order
// even through Limit/Offset windowing — may follow the compiled order
// literally (ModeStrict).
func (q *PreparedQuery) tunedProg(cfg execConfig, orderFree bool) *core.ForestProgram {
	on := q.eng.planner
	switch cfg.planner {
	case plannerOn:
		on = true
	case plannerOff:
		on = false
	}
	switch {
	case !on:
		return q.prog // zero tuning: the heuristic pre-planner search
	case orderFree:
		return q.prog.Tuned(hom.ModeStrict, q.eng.slack, nil)
	default:
		return q.prog.Tuned(hom.ModePlanned, q.eng.slack, nil)
	}
}

// stream drives one execution: Limit/Offset windowing over the
// early-terminating row iterator, sequential or parallel. The returned
// error is ctx.Err() — nil unless the context ended the stream.
func (q *PreparedQuery) stream(ctx context.Context, cfg execConfig, orderFree bool, yield func(rdf.Row) bool) error {
	if cfg.limit == 0 {
		return ctx.Err()
	}
	prog := q.tunedProg(cfg, orderFree)
	skip, remaining := cfg.offset, cfg.limit
	emit := func(r rdf.Row) bool {
		if skip > 0 {
			skip--
			return true
		}
		if !yield(r) {
			return false
		}
		if remaining > 0 {
			remaining--
			if remaining == 0 {
				return false
			}
		}
		return true
	}
	if cfg.workers > 1 {
		return prog.RowsParallel(ctx, cfg.workers, emit)
	}
	return prog.RowsContext(ctx, emit)
}

// Rows streams ⟦P⟧G as ID-native rows — the zero-decode tier for hot
// callers; no strings are touched. Each solution is yielded exactly
// once, in the deterministic enumeration order. The yielded Row
// aliases the enumeration's working row: it is valid only during the
// yield; Clone to retain. Breaking out of the range loop stops the
// enumeration immediately; cancelling ctx does the same at the next
// yield boundary (check ctx.Err() after the loop to distinguish a
// complete stream from a cancelled one).
func (q *PreparedQuery) Rows(ctx context.Context, opts ...ExecOption) iter.Seq[Row] {
	cfg := q.config(opts)
	return func(yield func(Row) bool) {
		q.stream(ctx, cfg, false, func(r rdf.Row) bool { return yield(r) })
	}
}

// Select streams ⟦P⟧G as Mappings, decoded at the yield boundary —
// the ergonomic tier. Early termination and cancellation behave as in
// Rows; each yielded Mapping is freshly allocated and owned by the
// caller.
func (q *PreparedQuery) Select(ctx context.Context, opts ...ExecOption) iter.Seq[Mapping] {
	cfg := q.config(opts)
	return func(yield func(Mapping) bool) {
		d := q.eng.g.Dict()
		layout := q.prog.Layout()
		q.stream(ctx, cfg, false, func(r rdf.Row) bool {
			return yield(layout.DecodeRow(d, r))
		})
	}
}

// Count returns |⟦P⟧G| (after Limit/Offset windowing, if any) without
// decoding or materialising any solution.
func (q *PreparedQuery) Count(ctx context.Context, opts ...ExecOption) (int, error) {
	n := 0
	err := q.stream(ctx, q.config(opts), true, func(rdf.Row) bool {
		n++
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// All materialises ⟦P⟧G as a MappingSet — the convenience tier,
// equivalent to collecting Select.
func (q *PreparedQuery) All(ctx context.Context, opts ...ExecOption) (*MappingSet, error) {
	out := rdf.NewMappingSet()
	d := q.eng.g.Dict()
	layout := q.prog.Layout()
	err := q.stream(ctx, q.config(opts), false, func(r rdf.Row) bool {
		out.Add(layout.DecodeRow(d, r))
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Ask decides wdEVAL — whether µ ∈ ⟦P⟧G — with the engine's algorithm
// (WithAlgorithm, WithPebbleK). Cancellation is polled between the
// trees of the forest.
//
// Queries carrying a FILTER or a SELECT projection fall back to a
// membership scan over the (filtered, projected) row stream: the
// homomorphism and pebble-game machinery decides membership for the
// bare pattern semantics only, and a filtered solution set is not
// closed under the subsumption arguments those algorithms rely on.
func (q *PreparedQuery) Ask(ctx context.Context, mu Mapping) (bool, error) {
	if q.eng.alg == AlgPebble && q.eng.pebbleK < 1 {
		return false, fmt.Errorf("wdsparql: the pebble algorithm requires k ≥ 1, got WithPebbleK(%d)", q.eng.pebbleK)
	}
	if q.prog.Projected() || q.an.forest.HasFilters() {
		return q.askByScan(ctx, mu)
	}
	return core.EvalContext(ctx, q.eng.alg, q.eng.pebbleK, q.an.forest, q.eng.g, mu)
}

// askByScan decides µ ∈ ⟦Q⟧G by streaming the query's rows and
// comparing each against µ encoded over the output layout. Order-free,
// so the planner may follow the compiled order literally; stops at the
// first match.
func (q *PreparedQuery) askByScan(ctx context.Context, mu Mapping) (bool, error) {
	target, ok := q.prog.Layout().EncodeMapping(q.eng.g.Dict(), mu)
	if !ok {
		return false, nil
	}
	found := false
	err := q.stream(ctx, q.config(nil), true, func(r rdf.Row) bool {
		for i := range r {
			if r[i] != target[i] {
				return true
			}
		}
		found = true
		return false
	})
	if err != nil {
		return false, err
	}
	return found, nil
}
