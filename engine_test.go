package wdsparql

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

// Tests of the Engine / PreparedQuery API: the prepared pipeline is
// pinned to the reference implementations (EnumerateTopDownForest and
// the compositional sparql.Eval), the Limit/Offset window is pinned to
// prefix-slicing the full result, cancellation must stop streams (and
// parallel workers) without leaking goroutines, and one PreparedQuery
// must serve concurrent executions (exercised under -race in CI).

// e9Pattern is the enumeration workload of the E9/E10 benchmarks as a
// graph pattern: a root edge with one optional two-step chain and one
// optional attribute arm.
const e9Pattern = `(((?x p0 ?y) OPT ((?y p1 ?z) OPT (?z p2 ?u))) OPT (?y p3 ?w))`

func e9Prepared(t testing.TB, n int) (*Engine, *PreparedQuery, *Graph) {
	t.Helper()
	g := gen.Random(n, 4*n, 4, 7)
	eng := NewEngine(g)
	q, err := eng.Prepare(MustParsePattern(e9Pattern))
	if err != nil {
		t.Fatal(err)
	}
	return eng, q, g
}

// collectSelect drains q.Select into a MappingSet plus an ordered
// slice.
func collectSelect(q *PreparedQuery, ctx context.Context, opts ...ExecOption) (*MappingSet, []Mapping) {
	set := rdf.NewMappingSet()
	var ordered []Mapping
	for mu := range q.Select(ctx, opts...) {
		set.Add(mu)
		ordered = append(ordered, mu)
	}
	return set, ordered
}

func TestEnginePinnedToReferencePipelines(t *testing.T) {
	rng := rand.New(rand.NewSource(2018))
	ctx := context.Background()
	used := 0
	for trial := 0; used < 80 && trial < 4000; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: 2 + trial%2, Union: trial%3 == 0})
		if !ok {
			continue
		}
		used++
		g := gen.Random(4, 8+rng.Intn(10), 2, int64(trial))
		// The generator vocabulary uses predicates p,q and constants
		// a,b; remap the data onto it so patterns actually match.
		data := NewGraph()
		for _, tr := range g.Triples() {
			pd := "p"
			if tr.P.Value == "p1" {
				pd = "q"
			}
			data.AddTriple(tr.S.Value, pd, tr.O.Value)
		}
		eng := NewEngine(data)
		q, err := eng.Prepare(p)
		if err != nil {
			t.Fatalf("prepare %s: %v", sparql.Format(p), err)
		}

		want := core.EnumerateTopDownForest(q.Forest(), data) // reference 1
		ref := sparql.Eval(p, data)                           // reference 2
		if want.Len() != ref.Len() {
			t.Fatalf("references disagree on %s: %d vs %d", sparql.Format(p), want.Len(), ref.Len())
		}

		all, err := q.All(ctx)
		if err != nil {
			t.Fatal(err)
		}
		sel, _ := collectSelect(q, ctx)
		nRows := 0
		for r := range q.Rows(ctx) {
			if got := q.Layout().DecodeRow(data.Dict(), r); !want.Contains(got) {
				t.Fatalf("Rows yielded non-solution %v for %s", got, sparql.Format(p))
			}
			nRows++
		}
		cnt, err := q.Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		par, err := q.All(ctx, Parallel(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, set := range []*MappingSet{all, sel, par} {
			if set.Len() != want.Len() {
				t.Fatalf("%s: engine=%d want=%d", sparql.Format(p), set.Len(), want.Len())
			}
			for _, mu := range want.Slice() {
				if !set.Contains(mu) {
					t.Fatalf("%s: missing %v", sparql.Format(p), mu)
				}
			}
		}
		if nRows != want.Len() || cnt != want.Len() {
			t.Fatalf("%s: rows=%d count=%d want=%d", sparql.Format(p), nRows, cnt, want.Len())
		}
	}
	if used < 40 {
		t.Fatalf("too few generated patterns: %d", used)
	}
}

func TestEngineLimitOffsetIsPrefixSlicing(t *testing.T) {
	ctx := context.Background()
	_, q, _ := e9Prepared(t, 48)

	var full []Row
	for r := range q.Rows(ctx) {
		full = append(full, r.Clone())
	}
	if len(full) < 20 {
		t.Fatalf("workload too small: %d rows", len(full))
	}

	rowsEqual := func(a, b Row) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	for _, tc := range []struct{ limit, offset int }{
		{0, 0}, {1, 0}, {5, 0}, {5, 3}, {0, 3}, {-1, 7},
		{len(full), 0}, {len(full) + 10, 5}, {3, len(full) + 1},
	} {
		wantStart := min(tc.offset, len(full))
		wantEnd := len(full)
		if tc.limit >= 0 {
			wantEnd = min(wantStart+tc.limit, len(full))
		}
		want := full[wantStart:wantEnd]
		var got []Row
		for r := range q.Rows(ctx, Limit(tc.limit), Offset(tc.offset)) {
			got = append(got, r.Clone())
		}
		if len(got) != len(want) {
			t.Fatalf("limit=%d offset=%d: got %d rows, want %d", tc.limit, tc.offset, len(got), len(want))
		}
		for i := range got {
			if !rowsEqual(got[i], want[i]) {
				t.Fatalf("limit=%d offset=%d: row %d differs", tc.limit, tc.offset, i)
			}
		}
		// Count must see the same window, sequential and parallel.
		for _, opts := range [][]ExecOption{
			{Limit(tc.limit), Offset(tc.offset)},
			{Limit(tc.limit), Offset(tc.offset), Parallel(4)},
		} {
			cnt, err := q.Count(ctx, opts...)
			if err != nil {
				t.Fatal(err)
			}
			if cnt != len(want) {
				t.Fatalf("limit=%d offset=%d parallel=%v: count=%d want=%d",
					tc.limit, tc.offset, len(opts) == 3, cnt, len(want))
			}
		}
	}
}

func TestEngineParallelMatchesSequentialOrder(t *testing.T) {
	ctx := context.Background()
	_, q, _ := e9Prepared(t, 64)
	var seq, par []Row
	for r := range q.Rows(ctx) {
		seq = append(seq, r.Clone())
	}
	for r := range q.Rows(ctx, Parallel(4)) {
		par = append(par, r.Clone())
	}
	if len(seq) != len(par) {
		t.Fatalf("sequential %d rows, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		for j := range seq[i] {
			if seq[i][j] != par[i][j] {
				t.Fatalf("row %d: parallel stream diverges from sequential order", i)
			}
		}
	}
}

// WithShards(n) seals the graph into the sharded backend; the stream
// of every execution tier must be byte-identical to the default frozen
// engine's, sequentially and on a worker pool, for every shard count.
func TestEngineWithShardsMatchesFrozenStream(t *testing.T) {
	ctx := context.Background()
	_, qf, g := e9Prepared(t, 64)
	var want []Row
	for r := range qf.Rows(ctx) {
		want = append(want, r.Clone())
	}
	for _, shards := range []int{1, 2, 4} {
		gs := g.Clone()
		eng := NewEngine(gs, WithShards(shards), WithWorkers(2))
		if shards > 1 && (!gs.Sharded() || gs.ShardCount() != shards) {
			t.Fatalf("WithShards(%d): backend not sharded", shards)
		}
		if shards <= 1 && !gs.Frozen() {
			t.Fatalf("WithShards(%d): expected the frozen default", shards)
		}
		q, err := eng.Prepare(MustParsePattern(e9Pattern))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			var got []Row
			for r := range q.Rows(ctx, Parallel(workers)) {
				got = append(got, r.Clone())
			}
			if len(got) != len(want) {
				t.Fatalf("shards=%d workers=%d: %d rows, want %d", shards, workers, len(got), len(want))
			}
			for i := range want {
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("shards=%d workers=%d: row %d diverges", shards, workers, i)
					}
				}
			}
		}
		if n, err := q.Count(ctx); err != nil || n != len(want) {
			t.Fatalf("shards=%d: Count=%d err=%v, want %d", shards, n, err, len(want))
		}
	}
	// A graph the caller already sharded keeps its backend: the
	// default seal must not silently re-freeze it single-arena.
	pre := g.Clone().Shard(3)
	NewEngine(pre)
	if !pre.Sharded() || pre.ShardCount() != 3 {
		t.Fatal("NewEngine discarded a caller-sharded backend")
	}
}

func TestEngineCancellationStopsStreams(t *testing.T) {
	_, q, _ := e9Prepared(t, 64)
	total, err := q.Count(context.Background())
	if err != nil || total < 50 {
		t.Fatalf("workload: %d rows, %v", total, err)
	}
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		seen := 0
		for range q.Rows(ctx, Parallel(workers)) {
			seen++
			if seen == 3 {
				cancel()
			}
		}
		cancel()
		if seen >= total {
			t.Fatalf("workers=%d: cancellation did not stop the stream (%d of %d rows)", workers, seen, total)
		}
		// The terminal operations must surface the cancellation.
		if _, err := q.Count(ctx, Parallel(workers)); err == nil {
			t.Fatalf("workers=%d: Count on cancelled ctx must fail", workers)
		}
		if _, err := q.All(ctx, Parallel(workers)); err == nil {
			t.Fatalf("workers=%d: All on cancelled ctx must fail", workers)
		}
		if _, err := q.Ask(ctx, Mapping{}); err == nil {
			t.Fatalf("workers=%d: Ask on cancelled ctx must fail", workers)
		}
	}
}

func TestEngineParallelEarlyStopLeaksNoGoroutines(t *testing.T) {
	_, q, _ := e9Prepared(t, 64)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		// Break out of a parallel stream almost immediately: the
		// iterator must wait for its workers before returning.
		for range q.Rows(context.Background(), Parallel(4)) {
			break
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for range q.Rows(ctx, Parallel(4)) {
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after parallel early stops", before, after)
	}
}

func TestEngineConcurrentSelectOnOnePreparedQuery(t *testing.T) {
	ctx := context.Background()
	_, q, g := e9Prepared(t, 48)
	want, err := Solutions(MustParsePattern(e9Pattern), g)
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	results := make([]*MappingSet, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := []ExecOption{}
			if i%2 == 1 {
				opts = append(opts, Parallel(3))
			}
			set, _ := collectSelect(q, ctx, opts...)
			results[i] = set
			// Interleave the lazily-cached static measures from many
			// goroutines too: they must be computed exactly once, safely.
			_ = q.DominationWidth()
			_ = q.LocalWidth()
			_ = q.CertainVars()
		}(i)
	}
	wg.Wait()
	for i, set := range results {
		if set.Len() != want.Len() {
			t.Fatalf("goroutine %d: %d solutions, want %d", i, set.Len(), want.Len())
		}
		for _, mu := range want.Slice() {
			if !set.Contains(mu) {
				t.Fatalf("goroutine %d: missing %v", i, mu)
			}
		}
	}
}

func TestEngineAskMatchesEnumeration(t *testing.T) {
	ctx := context.Background()
	data := MustParseGraph("a p b .\nb q c .\nd p e .\n")
	p := MustParsePattern(`((?x p ?y) OPT (?y q ?z))`)
	for _, opts := range [][]Option{
		{},
		{WithAlgorithm(AlgPebble), WithPebbleK(1)},
	} {
		eng := NewEngine(data, opts...)
		q, err := eng.Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		all, err := q.All(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, mu := range all.Slice() {
			ok, err := q.Ask(ctx, mu)
			if err != nil || !ok {
				t.Fatalf("Ask(%v)=%v,%v want member", mu, ok, err)
			}
		}
		for _, mu := range []Mapping{
			{"x": "a", "y": "b"}, // extends, not maximal
			{"x": "zzz", "y": "b"},
		} {
			ok, err := q.Ask(ctx, mu)
			if err != nil || ok {
				t.Fatalf("Ask(%v)=%v,%v want non-member", mu, ok, err)
			}
		}
	}
}

func TestEngineAskRejectsBadPebbleK(t *testing.T) {
	data := MustParseGraph("a p b .\n")
	q, err := NewEngine(data, WithAlgorithm(AlgPebble), WithPebbleK(0)).
		Prepare(MustParsePattern(`(?x p ?y)`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Ask(context.Background(), Mapping{"x": "a", "y": "b"}); err == nil {
		t.Fatal("Ask must reject a pebble engine with k < 1, not panic")
	}
}

func TestEnginePrepareRejectsNonWellDesigned(t *testing.T) {
	notWD := MustParsePattern(`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`)
	if _, err := NewEngine(nil).Prepare(notWD); err == nil {
		t.Fatal("Prepare must reject non-well-designed patterns")
	}
}

func TestEnginePrepareForest(t *testing.T) {
	ctx := context.Background()
	f := gen.Fk(3)
	g := gen.FkData(3, 12, true, false)
	eng := NewEngine(g)
	q := eng.PrepareForest(f)
	if q.Pattern() != nil {
		t.Fatal("forest-prepared query has no pattern")
	}
	want := core.EnumerateTopDownForest(f, g)
	all, err := q.All(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != want.Len() {
		t.Fatalf("All=%d want=%d", all.Len(), want.Len())
	}
	if dw := q.DominationWidth(); dw != core.DominationWidth(f) {
		t.Fatalf("dw=%d", dw)
	}
	if lw := q.LocalWidth(); lw != core.LocalWidth(f) {
		t.Fatalf("lw=%d", lw)
	}
	if len(f) > 1 {
		if _, err := q.BranchTreewidth(); err == nil {
			t.Fatal("bw must be rejected on multi-tree forests")
		}
	}
}

func TestEngineStaticWidthsMatchLegacy(t *testing.T) {
	p := MustParsePattern(`((?x p ?y) OPT (?y q ?z))`)
	q, err := NewEngine(nil).Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	dw, _ := DominationWidth(p)
	bw, _ := BranchTreewidth(p)
	lw, _ := LocalWidth(p)
	cv, _ := CertainVars(p)
	if q.DominationWidth() != dw {
		t.Fatalf("dw: %d vs %d", q.DominationWidth(), dw)
	}
	if qbw, err := q.BranchTreewidth(); err != nil || qbw != bw {
		t.Fatalf("bw: %d,%v vs %d", qbw, err, bw)
	}
	if q.LocalWidth() != lw {
		t.Fatalf("lw: %d vs %d", q.LocalWidth(), lw)
	}
	if len(q.CertainVars()) != len(cv) {
		t.Fatalf("cv: %v vs %v", q.CertainVars(), cv)
	}
}

func TestLegacyShimsShareOnePreparePath(t *testing.T) {
	// A pattern unique to this test so the cache entry is fresh.
	p := MustParsePattern(`((?x legacyShimP ?y) OPT (?y legacyShimQ ?z))`)
	f1, err := ToForest(p)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := ToForest(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != 1 || f1[0] != f2[0] {
		t.Fatal("legacy calls must reuse the cached forest, not re-run WDPF")
	}
	// Width and certain-variable shims ride the same analysis.
	if _, err := LocalWidth(p); err != nil {
		t.Fatal(err)
	}
	if _, err := CertainVars(p); err != nil {
		t.Fatal(err)
	}
	q, err := NewEngine(nil).Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	if q.Forest()[0] != f1[0] {
		t.Fatal("Prepare must reuse the shims' cached analysis")
	}
}

func TestEngineSelectStreamsIncrementally(t *testing.T) {
	// Breaking out of Select must not enumerate the remainder: observe
	// via a Limit-free stream on a workload with many solutions, by
	// checking that break-after-one returns promptly relative to a full
	// drain. Rather than time it, pin the contract structurally: a
	// limit-1 Count equals 1 even though the full count is much larger.
	ctx := context.Background()
	_, q, _ := e9Prepared(t, 64)
	full, err := q.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	one, err := q.Count(ctx, Limit(1))
	if err != nil {
		t.Fatal(err)
	}
	if full < 100 || one != 1 {
		t.Fatalf("full=%d one=%d", full, one)
	}
	for mu := range q.Select(ctx) {
		_ = mu
		break // must terminate the underlying enumeration
	}
}

func TestEngineEmptyGraphAndEmptyResult(t *testing.T) {
	ctx := context.Background()
	q, err := NewEngine(nil).Prepare(MustParsePattern(`(?x nosuch ?y)`))
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count(ctx)
	if err != nil || n != 0 {
		t.Fatalf("count on empty graph: %d, %v", n, err)
	}
	all, err := q.All(ctx, Parallel(4))
	if err != nil || all.Len() != 0 {
		t.Fatalf("all on empty graph: %d, %v", all.Len(), err)
	}
}

// ExampleEngine documents the prepare-once / stream-many lifecycle.
func ExampleEngine() {
	data := MustParseGraph(`
alice knows bob .
bob knows carol .
alice email alice@example.org .
`)
	engine := NewEngine(data)
	q, err := engine.Prepare(MustParsePattern(`((?p knows ?q) OPT (?p email ?m))`))
	if err != nil {
		panic(err)
	}
	n, _ := q.Count(context.Background())
	fmt.Println(n, "solutions")
	// Output: 2 solutions
}
