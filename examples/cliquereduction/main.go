// Clique reduction: Theorem 2 run forwards. The program builds random
// host graphs H, compiles each (H, k) p-CLIQUE instance into a
// co-wdEVAL instance (query P from the unbounded-width grid family,
// data G = frozen Lemma-2 structure B, mapping µ), decides it through
// the prepared-query engine, and checks the verdict against a direct
// clique search — demonstrating that evaluation of
// unbounded-domination-width classes embeds W[1]-hard problems.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"wdsparql"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/reduction"
)

func main() {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2018))
	fmt.Println("p-CLIQUE through co-wdEVAL (Section 4 reduction)")
	fmt.Println("k   |V(H)|  |E(H)|  |G|     clique-via-eval  direct  agree")
	for _, k := range []int{2, 3} {
		for _, n := range []int{5, 8, 11} {
			h := wdsparql.NewUGraph(n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if rng.Float64() < 0.45 {
						h.AddEdge(i, j)
					}
				}
			}
			in, err := reduction.New(k, h)
			if err != nil {
				log.Fatal(err)
			}
			// Theorem 2: H has a k-clique iff µ ∉ ⟦P⟧G. The instance's
			// query is a forest, so it enters the engine via
			// PrepareForest; Ask runs the engine's wdEVAL algorithm.
			q := wdsparql.NewEngine(in.G).PrepareForest(in.Forest)
			member, err := q.Ask(ctx, in.Mu)
			if err != nil {
				log.Fatal(err)
			}
			viaEval := !member
			direct := graphalg.HasClique(h, k)
			fmt.Printf("%-3d %-7d %-7d %-7d %-16v %-7v %v\n",
				k, n, h.EdgeCount(), in.G.Len(), viaEval, direct, viaEval == direct)
			if viaEval != direct {
				log.Fatal("reduction disagrees with direct clique search")
			}
		}
	}

	fmt.Println()
	fmt.Println("Anatomy of one instance (k=3, H = triangle plus pendant):")
	h := wdsparql.NewUGraph(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(0, 2)
	h.AddEdge(2, 3)
	in, err := reduction.New(3, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  query: %d tree(s); wide t-graph S has %d triples over %d variables\n",
		len(in.Forest), len(in.S.S), len(in.S.S.Vars()))
	fmt.Printf("  Lemma-2 structure B: %d triples; frozen data G: %d triples\n",
		len(in.B.S), in.G.Len())
	homHolds, clique := in.HomAgreesWithClique()
	fmt.Printf("  (S,X)→(B,X): %v; H has 3-clique: %v (Lemma 2 item 3)\n", homHolds, clique)
	q := wdsparql.NewEngine(in.G).PrepareForest(in.Forest)
	member, err := q.Ask(ctx, in.Mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  µ ∉ ⟦P⟧G: %v (Theorem 2: equivalent to the clique)\n", !member)
}
