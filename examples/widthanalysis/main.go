// Width analysis: reproduces the numbers of the paper's Examples 3–5
// and Section 3.2 — the reason domination width was introduced. For
// each k the program reports ctw of the Figure 1 t-graphs, dw and
// local width of the wdPF F_k (Figure 2), and bw of the UNION-free
// family T'_k, showing where the previously known local-tractability
// condition fails while the new measures stay bounded. The forest
// families are prepared on a data-less engine: the width measures are
// part of a prepared query's cached static analysis.
package main

import (
	"fmt"

	"wdsparql"
	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
)

func main() {
	// A purely static engine: no data, only query analysis.
	engine := wdsparql.NewEngine(nil)

	fmt.Println("Figure 1 (Example 3): ctw(S,X) grows, ctw(S',X) stays 1")
	fmt.Println("k   ctw(S,X)   tw(S',X)   ctw(S',X)")
	for k := 2; k <= 6; k++ {
		s, sp := gen.ExampleS(k), gen.ExampleSPrime(k)
		fmt.Printf("%-3d %-10d %-10d %d\n", k, core.CTW(s), core.TW(sp), core.CTW(sp))
	}

	fmt.Println()
	fmt.Println("Figure 2 (Examples 4-5): dw(F_k)=1 but F_k is not locally tractable")
	fmt.Println("k   dw(F_k)   localWidth(F_k)")
	for k := 2; k <= 5; k++ {
		q := engine.PrepareForest(gen.Fk(k))
		fmt.Printf("%-3d %-9d %d\n", k, q.DominationWidth(), q.LocalWidth())
	}

	fmt.Println()
	fmt.Println("Section 3.2: bw(T'_k)=1 (=dw by Prop. 5) but local width = k-1")
	fmt.Println("k   bw   dw   localWidth")
	for k := 2; k <= 5; k++ {
		q := engine.PrepareForest(ptree.Forest{gen.TkPrime(k)})
		bw, err := q.BranchTreewidth()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-3d %-4d %-4d %d\n", k, bw, q.DominationWidth(), q.LocalWidth())
	}

	fmt.Println()
	fmt.Println("Example 4: the GtG set of the root subtree T1[r1] of F_3")
	f := gen.Fk(3)
	fs := ptree.ForestSubtree{Forest: f, TreeIndex: 0,
		Subtree: ptree.NewSubtree(f[0], f[0].Root.ID)}
	for i, g := range ptree.GtG(fs) {
		fmt.Printf("  S_∆%d (ctw %d): %s\n", i+1, core.CTW(g), g.S)
	}
	fmt.Println("  (the high-ctw element is dominated by the low-ctw one — that is dw=1)")

	fmt.Println()
	fmt.Println("Unbounded families: CliqueChild and GridChild widths")
	fmt.Println("k   dw(CliqueChild_k)   bw(GridChild_{k,k})")
	for k := 2; k <= 4; k++ {
		ck := engine.PrepareForest(ptree.Forest{gen.CliqueChild(k)})
		gk := engine.PrepareForest(ptree.Forest{gen.GridChild(k, k)})
		bw, err := gk.BranchTreewidth()
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-3d %-19d %d\n", k, ck.DominationWidth(), bw)
	}
}
