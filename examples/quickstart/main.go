// Quickstart: parse a well-designed pattern, evaluate it over a small
// RDF graph, compute its widths, and decide membership of a single
// mapping with both algorithms.
package main

import (
	"fmt"
	"log"

	"wdsparql"
)

func main() {
	// A person listing with an optional email: the OPTIONAL operator
	// keeps people without an email in the result.
	pattern := wdsparql.MustParsePattern(`((?p knows ?q) OPT (?p email ?m))`)
	if !wdsparql.IsWellDesigned(pattern) {
		log.Fatal("pattern should be well-designed")
	}

	data := wdsparql.MustParseGraph(`
alice knows bob .
bob   knows carol .
alice email alice@example.org .
`)

	solutions, err := wdsparql.Solutions(pattern, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solutions of ⟦P⟧G:")
	for _, mu := range solutions.Slice() {
		fmt.Println(" ", mu)
	}

	dw, err := wdsparql.DominationWidth(pattern)
	if err != nil {
		log.Fatal(err)
	}
	bw, err := wdsparql.BranchTreewidth(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domination width %d, branch treewidth %d (equal by Prop. 5)\n", dw, bw)

	// Decide a single membership with both algorithms: bob has no
	// email, so µ = {p↦bob, q↦carol} is a (maximal) solution.
	mu := wdsparql.Mapping{"p": "bob", "q": "carol"}
	naive, err := wdsparql.Evaluate(wdsparql.AlgNaive, 1, pattern, data, mu)
	if err != nil {
		log.Fatal(err)
	}
	pebble, err := wdsparql.Evaluate(wdsparql.AlgPebble, dw, pattern, data, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ=%s: naive=%v, pebble=%v\n", mu, naive, pebble)
}
