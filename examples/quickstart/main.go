// Quickstart: the prepared-query lifecycle. Parse a well-designed
// pattern, prepare it once against a small RDF graph (the static
// analysis — well-designedness, wdpf translation, row-program
// compilation — happens here, never again), then execute it many ways:
// stream the solutions, page through them with Limit/Offset, count
// them without decoding, and decide membership of single mappings with
// both algorithms.
package main

import (
	"context"
	"fmt"
	"log"

	"wdsparql"
)

func main() {
	ctx := context.Background()

	// A person listing with an optional email: the OPTIONAL operator
	// keeps people without an email in the result.
	pattern := wdsparql.MustParsePattern(`((?p knows ?q) OPT (?p email ?m))`)

	data := wdsparql.MustParseGraph(`
alice knows bob .
bob   knows carol .
alice email alice@example.org .
`)

	// Compile once. Prepare fails exactly when the pattern is not
	// well-designed; the returned query is immutable and can serve any
	// number of concurrent executions.
	engine := wdsparql.NewEngine(data)
	q, err := engine.Prepare(pattern)
	if err != nil {
		log.Fatal(err)
	}

	// Stream ⟦P⟧G: solutions are decoded one at a time at the yield
	// boundary; breaking out of the loop stops the enumeration.
	fmt.Println("solutions of ⟦P⟧G:")
	for mu := range q.Select(ctx) {
		fmt.Println(" ", mu)
	}

	// Pagination without materialising the rest: the enumeration stops
	// as soon as the window is filled.
	page, err := q.All(ctx, wdsparql.Limit(1), wdsparql.Offset(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page 2 (limit 1, offset 1): %v\n", page.Slice())

	// Cardinality without decoding a single term.
	n, err := q.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("count: %d\n", n)

	// The width measures are part of the prepared query's static
	// analysis: computed on first access, cached forever.
	dw := q.DominationWidth()
	bw, err := q.BranchTreewidth()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domination width %d, branch treewidth %d (equal by Prop. 5)\n", dw, bw)

	// Decide a single membership with both algorithms: bob has no
	// email, so µ = {p↦bob, q↦carol} is a (maximal) solution. Ask uses
	// the engine's algorithm — prepare the same pattern on a second,
	// pebble-configured engine; the static analysis is shared between
	// them, not redone.
	mu := wdsparql.Mapping{"p": "bob", "q": "carol"}
	naive, err := q.Ask(ctx, mu)
	if err != nil {
		log.Fatal(err)
	}
	pq, err := wdsparql.NewEngine(data,
		wdsparql.WithAlgorithm(wdsparql.AlgPebble), wdsparql.WithPebbleK(dw)).Prepare(pattern)
	if err != nil {
		log.Fatal(err)
	}
	pebble, err := pq.Ask(ctx, mu)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("µ=%s: naive=%v, pebble=%v\n", mu, naive, pebble)
}
