// Social network: an OPTIONAL-heavy workload over generated data.
// The query asks for pairs of acquainted people with the employer of
// the first and the email of the second, both optional — the classic
// "preserve partial information" use case that motivates OPT in the
// paper's introduction. The example prepares the query once, streams
// the solution shapes, cross-checks the prepared pipeline against the
// compositional semantics, and re-decides a batch of memberships with
// the Theorem 1 algorithm through a pebble-configured engine.
package main

import (
	"context"
	"fmt"
	"log"

	"wdsparql"
	"wdsparql/internal/gen"
)

func main() {
	ctx := context.Background()

	pattern := wdsparql.MustParsePattern(`
		(((?p knows ?q) OPT (?p worksAt ?org)) OPT (?q email ?m))`)

	data := gen.SocialNetwork(60, 1)
	fmt.Printf("data: %d triples over %d IRIs\n", data.Len(), data.DomSize())

	// Prepare once; the same PreparedQuery serves every execution
	// below (it is immutable and goroutine-safe).
	engine := wdsparql.NewEngine(data)
	q, err := engine.Prepare(pattern)
	if err != nil {
		log.Fatal(err)
	}

	// Cross-check the prepared pipeline against the compositional
	// Pérez-et-al. reference semantics.
	ref := wdsparql.EvalCompositional(pattern, data)
	count, err := q.Count(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solutions: compositional=%d, prepared=%d (must agree)\n", ref.Len(), count)
	if ref.Len() != count {
		log.Fatal("evaluators disagree")
	}

	// Stream the solutions and bucket them by shape (bare pair,
	// pair+org, pair+email, all four bindings) — no materialised set.
	byDomSize := map[int]int{}
	for mu := range q.Select(ctx) {
		byDomSize[len(mu)]++
	}
	fmt.Println("solution shapes (|dom(µ)| → count):")
	for size := 2; size <= 4; size++ {
		fmt.Printf("  %d bindings: %d\n", size, byDomSize[size])
	}

	// A result page, enumerated lazily: the stream stops after
	// offset+limit solutions.
	page, err := q.All(ctx, wdsparql.Limit(3), wdsparql.Offset(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("page (limit 3, offset 5): %d solutions\n", page.Len())

	// The domination width certifies that the pebble algorithm with
	// k = dw is exact; it is cached on the prepared query.
	dw := q.DominationWidth()
	fmt.Printf("domination width: %d → pebble algorithm with k=%d is exact\n", dw, dw)

	// Batch membership decisions with the PTIME algorithm: a second
	// engine over the same data, configured for pebble evaluation. The
	// static analysis of the pattern is shared with q, not recomputed.
	pebbleEng := wdsparql.NewEngine(data,
		wdsparql.WithAlgorithm(wdsparql.AlgPebble), wdsparql.WithPebbleK(dw))
	pq, err := pebbleEng.Prepare(pattern)
	if err != nil {
		log.Fatal(err)
	}
	accepted := 0
	for mu := range q.Select(ctx) {
		ok, err := pq.Ask(ctx, mu)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	fmt.Printf("pebble algorithm re-accepts %d/%d solutions\n", accepted, count)
}
