// Social network: an OPTIONAL-heavy workload over generated data.
// The query asks for pairs of acquainted people with the employer of
// the first and the email of the second, both optional — the classic
// "preserve partial information" use case that motivates OPT in the
// paper's introduction. The example compares the compositional
// semantics against the pattern-forest evaluation and decides a batch
// of memberships with the Theorem 1 algorithm.
package main

import (
	"fmt"
	"log"

	"wdsparql"
	"wdsparql/internal/gen"
)

func main() {
	pattern := wdsparql.MustParsePattern(`
		(((?p knows ?q) OPT (?p worksAt ?org)) OPT (?q email ?m))`)
	if err := wdsparql.CheckWellDesigned(pattern); err != nil {
		log.Fatal(err)
	}

	data := gen.SocialNetwork(60, 1)
	fmt.Printf("data: %d triples over %d IRIs\n", data.Len(), data.DomSize())

	ref := wdsparql.EvalCompositional(pattern, data)
	viaForest, err := wdsparql.Solutions(pattern, data)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solutions: compositional=%d, pattern-forest=%d (must agree)\n",
		ref.Len(), viaForest.Len())
	if ref.Len() != viaForest.Len() {
		log.Fatal("evaluators disagree")
	}

	// Show a handful of solutions with different shapes (bare pair,
	// pair+org, pair+email, all four bindings).
	byDomSize := map[int]int{}
	for _, mu := range ref.Slice() {
		byDomSize[len(mu)]++
	}
	fmt.Println("solution shapes (|dom(µ)| → count):")
	for size := 2; size <= 4; size++ {
		fmt.Printf("  %d bindings: %d\n", size, byDomSize[size])
	}

	dw, err := wdsparql.DominationWidth(pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("domination width: %d → pebble algorithm with k=%d is exact\n", dw, dw)

	// Batch membership decisions with the PTIME algorithm.
	accepted := 0
	for _, mu := range ref.Slice() {
		ok, err := wdsparql.Evaluate(wdsparql.AlgPebble, dw, pattern, data, mu)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			accepted++
		}
	}
	fmt.Printf("pebble algorithm re-accepts %d/%d solutions\n", accepted, ref.Len())
}
