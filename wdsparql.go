// Package wdsparql is a from-scratch implementation of well-designed
// SPARQL evaluation and its tractability frontier, reproducing
//
//	Miguel Romero. "The Tractability Frontier of Well-designed SPARQL
//	Queries." PODS 2018 (arXiv:1712.08809).
//
// The package exposes the whole pipeline:
//
//   - RDF graphs and mappings (Parse/ReadGraph, Graph, Mapping);
//   - SPARQL graph patterns over AND / OPT / UNION with a parser and
//     the well-designedness test;
//   - the compositional Pérez-et-al. semantics (EvalCompositional);
//   - well-designed pattern forests (ToForest, the paper's wdpf);
//   - the width measures: core treewidth, branch treewidth
//     (Definition 3), domination width (Definition 2) and local
//     tractability width;
//   - two decision procedures for wdEVAL: the natural algorithm
//     (Evaluate with AlgNaive) and the polynomial-time Theorem 1
//     algorithm based on the existential pebble game (AlgPebble);
//   - the Section 4 hardness reduction from p-CLIQUE (package-level
//     access through SolveCliqueViaReduction).
//
// Quickstart:
//
//	pattern := wdsparql.MustParsePattern(`((?p knows ?q) OPT (?p email ?m))`)
//	data := wdsparql.MustParseGraph("alice knows bob .\nalice email a@x .")
//	solutions := wdsparql.Solutions(pattern, data)
//
// See examples/ for complete programs and DESIGN.md for the mapping
// from the paper's definitions to packages.
package wdsparql

import (
	"wdsparql/internal/core"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/reduction"
	"wdsparql/internal/sparql"
)

// Re-exported data-model types.
type (
	// Term is an IRI or a variable.
	Term = rdf.Term
	// Triple is an RDF triple or triple pattern.
	Triple = rdf.Triple
	// Graph is a ground RDF graph with positional indexes.
	Graph = rdf.Graph
	// Mapping is a partial function from variables to IRIs.
	Mapping = rdf.Mapping
	// MappingSet is a deduplicated set of mappings (an evaluation result).
	MappingSet = rdf.MappingSet
	// Pattern is a SPARQL graph pattern over AND / OPT / UNION.
	Pattern = sparql.Pattern
	// Forest is a well-designed pattern forest (the paper's wdPF).
	Forest = ptree.Forest
	// Tree is a well-designed pattern tree (the paper's wdPT).
	Tree = ptree.Tree
	// GTGraph is a generalised t-graph (S, X).
	GTGraph = hom.GTGraph
	// UGraph is an undirected graph (hosts of the clique reduction).
	UGraph = graphalg.UGraph
	// Algorithm selects an evaluation strategy.
	Algorithm = core.Algorithm
)

// Evaluation algorithm selectors.
const (
	// AlgNaive is the Lemma 1 natural algorithm (homomorphism tests).
	AlgNaive = core.AlgNaive
	// AlgPebble is the Theorem 1 algorithm (pebble-game tests).
	AlgPebble = core.AlgPebble
)

// IRI returns a constant term.
func IRI(v string) Term { return rdf.IRI(v) }

// Var returns a variable term ("x" and "?x" both denote ?x).
func Var(v string) Term { return rdf.Var(v) }

// ParseGraph parses an RDF graph in the line-oriented N-Triples subset.
func ParseGraph(src string) (*Graph, error) { return rdf.ParseGraph(src) }

// MustParseGraph is ParseGraph panicking on error.
func MustParseGraph(src string) *Graph { return rdf.MustParseGraph(src) }

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// ParsePattern parses a SPARQL graph pattern, e.g.
// "((?x p ?y) OPT (?y q ?z))".
func ParsePattern(src string) (Pattern, error) { return sparql.Parse(src) }

// MustParsePattern is ParsePattern panicking on error.
func MustParsePattern(src string) Pattern { return sparql.MustParse(src) }

// IsWellDesigned reports whether the pattern is well-designed.
func IsWellDesigned(p Pattern) bool { return sparql.IsWellDesigned(p) }

// CheckWellDesigned explains the first well-designedness violation.
func CheckWellDesigned(p Pattern) error { return sparql.CheckWellDesigned(p) }

// ToForest translates a well-designed pattern into an equivalent wdPF
// in NR normal form (the paper's wdpf function).
func ToForest(p Pattern) (Forest, error) { return ptree.WDPF(p) }

// EvalCompositional computes ⟦P⟧G by the direct Pérez-et-al.
// semantics; exponential in the worst case, exact always.
func EvalCompositional(p Pattern, g *Graph) *MappingSet { return sparql.Eval(p, g) }

// Solutions computes ⟦P⟧G of a well-designed pattern through its
// pattern-forest form (Lemma 1 enumeration).
func Solutions(p Pattern, g *Graph) (*MappingSet, error) {
	f, err := ptree.WDPF(p)
	if err != nil {
		return nil, err
	}
	return core.EnumerateForest(f, g), nil
}

// Evaluate decides wdEVAL — whether µ ∈ ⟦P⟧G — with the selected
// algorithm. k is the domination-width bound used by AlgPebble
// (correctness is guaranteed when dw(P) ≤ k); it is ignored by
// AlgNaive.
func Evaluate(alg Algorithm, k int, p Pattern, g *Graph, mu Mapping) (bool, error) {
	f, err := ptree.WDPF(p)
	if err != nil {
		return false, err
	}
	return core.Eval(alg, k, f, g, mu), nil
}

// EvaluateForest is Evaluate on an already-translated forest.
func EvaluateForest(alg Algorithm, k int, f Forest, g *Graph, mu Mapping) bool {
	return core.Eval(alg, k, f, g, mu)
}

// DominationWidth computes dw(P) (Definition 2). Exponential in |P|;
// the width is a static property of the query.
func DominationWidth(p Pattern) (int, error) { return core.DominationWidthOfPattern(p) }

// BranchTreewidth computes bw(P) (Definition 3) of a UNION-free
// well-designed pattern; by Proposition 5 it equals dw(P).
func BranchTreewidth(p Pattern) (int, error) { return core.BranchTreewidthOfPattern(p) }

// LocalWidth computes the local-tractability width of the pattern's
// forest (the measure of Letelier et al. that domination width
// strictly generalises).
func LocalWidth(p Pattern) (int, error) {
	f, err := ptree.WDPF(p)
	if err != nil {
		return 0, err
	}
	return core.LocalWidth(f), nil
}

// CertainVars returns the variables bound in every solution of the
// well-designed pattern over every graph (the static analysis of
// Letelier et al.).
func CertainVars(p Pattern) ([]Term, error) {
	f, err := ptree.WDPF(p)
	if err != nil {
		return nil, err
	}
	return ptree.CertainVarsForest(f), nil
}

// Counterexample witnesses non-containment of two well-designed
// patterns: Mu ∈ ⟦P1⟧G but Mu ∉ ⟦P2⟧G.
type Counterexample = core.Counterexample

// RefuteContainment searches canonical instances for a witness that
// ⟦P1⟧ ⊈ ⟦P2⟧. A returned counterexample is always genuine; absence of
// one does not prove containment (the problem is Π₂ᵖ-complete).
func RefuteContainment(p1, p2 Pattern) (Counterexample, bool, error) {
	f1, err := ptree.WDPF(p1)
	if err != nil {
		return Counterexample{}, false, err
	}
	f2, err := ptree.WDPF(p2)
	if err != nil {
		return Counterexample{}, false, err
	}
	ce, ok := core.RefuteContainment(f1, f2)
	return ce, ok, nil
}

// NewUGraph returns an empty undirected graph with n vertices, for use
// as a host of the clique reduction.
func NewUGraph(n int) *UGraph { return graphalg.NewUGraph(n) }

// SolveCliqueViaReduction decides whether the host graph contains a
// k-clique by compiling the Section 4 fpt-reduction to co-wdEVAL and
// evaluating it — Theorem 2 run forwards.
func SolveCliqueViaReduction(k int, h *UGraph) (bool, error) {
	return reduction.SolveClique(k, h)
}
