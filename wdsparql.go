// Package wdsparql is a from-scratch implementation of well-designed
// SPARQL evaluation and its tractability frontier, reproducing
//
//	Miguel Romero. "The Tractability Frontier of Well-designed SPARQL
//	Queries." PODS 2018 (arXiv:1712.08809).
//
// The package exposes the whole pipeline:
//
//   - RDF graphs and mappings (Parse/ReadGraph, Graph, Mapping);
//   - SPARQL graph patterns over AND / OPT / UNION with a parser and
//     the well-designedness test;
//   - the compositional Pérez-et-al. semantics (EvalCompositional);
//   - well-designed pattern forests (ToForest, the paper's wdpf);
//   - the width measures: core treewidth, branch treewidth
//     (Definition 3), domination width (Definition 2) and local
//     tractability width;
//   - two decision procedures for wdEVAL: the natural algorithm
//     (AlgNaive) and the polynomial-time Theorem 1 algorithm based on
//     the existential pebble game (AlgPebble);
//   - the Section 4 hardness reduction from p-CLIQUE (package-level
//     access through SolveCliqueViaReduction).
//
// The production entry point is the prepared-query engine: an Engine
// captures a graph and its options, Prepare runs the static analysis
// of a pattern exactly once, and the returned PreparedQuery streams
// any number of executions — the compile-once / stream-many split that
// makes per-query tractability pay off on repeated workloads.
//
// Quickstart:
//
//	pattern := wdsparql.MustParsePattern(`((?p knows ?q) OPT (?p email ?m))`)
//	data := wdsparql.MustParseGraph("alice knows bob .\nalice email a@x .")
//
//	engine := wdsparql.NewEngine(data)
//	q, err := engine.Prepare(pattern) // static analysis, once
//	if err != nil { ... }             // not well-designed
//
//	for mu := range q.Select(ctx) {   // stream ⟦P⟧G, decoded
//		fmt.Println(mu)
//	}
//	first, _ := q.All(ctx, wdsparql.Limit(10))  // materialise a page
//	n, _ := q.Count(ctx)                        // cardinality, no decode
//	ok, _ := q.Ask(ctx, wdsparql.Mapping{"p": "alice", "q": "bob"})
//
// A PreparedQuery is immutable and safe for concurrent use; cancelling
// ctx stops any stream (and its parallel workers) at the next yield
// boundary. The free functions (Solutions, Evaluate, LocalWidth, ...)
// remain as thin deprecated shims over a throwaway engine.
//
// See examples/ for complete programs and DESIGN.md for the mapping
// from the paper's definitions to packages and the Engine API
// contract.
package wdsparql

import (
	"context"

	"wdsparql/internal/core"
	"wdsparql/internal/graphalg"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/reduction"
	"wdsparql/internal/sparql"
)

// Re-exported data-model types.
type (
	// Term is an IRI or a variable.
	Term = rdf.Term
	// Triple is an RDF triple or triple pattern.
	Triple = rdf.Triple
	// Graph is a ground RDF graph with positional indexes.
	Graph = rdf.Graph
	// Mapping is a partial function from variables to IRIs.
	Mapping = rdf.Mapping
	// MappingSet is a deduplicated set of mappings (an evaluation result).
	MappingSet = rdf.MappingSet
	// Pattern is a SPARQL graph pattern over AND / OPT / UNION.
	Pattern = sparql.Pattern
	// Forest is a well-designed pattern forest (the paper's wdPF).
	Forest = ptree.Forest
	// Tree is a well-designed pattern tree (the paper's wdPT).
	Tree = ptree.Tree
	// GTGraph is a generalised t-graph (S, X).
	GTGraph = hom.GTGraph
	// UGraph is an undirected graph (hosts of the clique reduction).
	UGraph = graphalg.UGraph
	// Algorithm selects an evaluation strategy.
	Algorithm = core.Algorithm
)

// Evaluation algorithm selectors.
const (
	// AlgNaive is the Lemma 1 natural algorithm (homomorphism tests).
	AlgNaive = core.AlgNaive
	// AlgPebble is the Theorem 1 algorithm (pebble-game tests).
	AlgPebble = core.AlgPebble
)

// IRI returns a constant term.
func IRI(v string) Term { return rdf.IRI(v) }

// Var returns a variable term ("x" and "?x" both denote ?x).
func Var(v string) Term { return rdf.Var(v) }

// ParseGraph parses an RDF graph in the line-oriented N-Triples subset.
func ParseGraph(src string) (*Graph, error) { return rdf.ParseGraph(src) }

// MustParseGraph is ParseGraph panicking on error.
func MustParseGraph(src string) *Graph { return rdf.MustParseGraph(src) }

// NewGraph returns an empty RDF graph.
func NewGraph() *Graph { return rdf.NewGraph() }

// ParsePattern parses a SPARQL graph pattern, e.g.
// "((?x p ?y) OPT (?y q ?z))".
func ParsePattern(src string) (Pattern, error) { return sparql.Parse(src) }

// MustParsePattern is ParsePattern panicking on error.
func MustParsePattern(src string) Pattern { return sparql.MustParse(src) }

// IsWellDesigned reports whether the pattern is well-designed.
func IsWellDesigned(p Pattern) bool { return sparql.IsWellDesigned(p) }

// CheckWellDesigned explains the first well-designedness violation.
func CheckWellDesigned(p Pattern) error { return sparql.CheckWellDesigned(p) }

// ToForest translates a well-designed pattern into an equivalent wdPF
// in NR normal form (the paper's wdpf function). The translation is
// memoised through the shared prepare path.
func ToForest(p Pattern) (Forest, error) {
	an, err := analyze(p)
	if err != nil {
		return nil, err
	}
	return an.forest, nil
}

// EvalCompositional computes ⟦P⟧G by the direct Pérez-et-al.
// semantics; exponential in the worst case, exact always.
func EvalCompositional(p Pattern, g *Graph) *MappingSet { return sparql.Eval(p, g) }

// Solutions computes ⟦P⟧G of a well-designed pattern through its
// pattern-forest form.
//
// Deprecated: Solutions re-compiles the query against the graph on
// every call. Use Engine.Prepare once and PreparedQuery.All (or the
// streaming Select/Rows) per execution.
func Solutions(p Pattern, g *Graph) (*MappingSet, error) {
	q, err := NewEngine(g).Prepare(p)
	if err != nil {
		return nil, err
	}
	return q.All(context.Background())
}

// Evaluate decides wdEVAL — whether µ ∈ ⟦P⟧G — with the selected
// algorithm. k is the domination-width bound used by AlgPebble
// (correctness is guaranteed when dw(P) ≤ k); it is ignored by
// AlgNaive.
//
// Deprecated: use Engine.Prepare with WithAlgorithm/WithPebbleK and
// PreparedQuery.Ask, which amortise the pattern analysis across calls.
func Evaluate(alg Algorithm, k int, p Pattern, g *Graph, mu Mapping) (bool, error) {
	an, err := analyze(p)
	if err != nil {
		return false, err
	}
	if an.sel || an.forest.HasFilters() {
		// FILTER/SELECT queries need the engine's membership scan;
		// the bare decision algorithms ignore both.
		q, err := NewEngine(g, WithAlgorithm(alg), WithPebbleK(k)).Prepare(p)
		if err != nil {
			return false, err
		}
		return q.Ask(context.Background(), mu)
	}
	return core.Eval(alg, k, an.forest, g, mu), nil
}

// EvaluateForest is Evaluate on an already-translated forest.
//
// Deprecated: use Engine.PrepareForest and PreparedQuery.Ask.
func EvaluateForest(alg Algorithm, k int, f Forest, g *Graph, mu Mapping) bool {
	if f.HasFilters() {
		q := NewEngine(g, WithAlgorithm(alg), WithPebbleK(k)).PrepareForest(f)
		ok, _ := q.Ask(context.Background(), mu)
		return ok
	}
	return core.Eval(alg, k, f, g, mu)
}

// DominationWidth computes dw(P) (Definition 2). Exponential in |P|;
// the width is a static property of the query.
//
// Deprecated: use PreparedQuery.DominationWidth, which caches the
// result alongside the rest of the query's static analysis.
func DominationWidth(p Pattern) (int, error) {
	an, err := analyze(p)
	if err != nil {
		return 0, err
	}
	return an.dominationWidth(), nil
}

// BranchTreewidth computes bw(P) (Definition 3) of a UNION-free
// well-designed pattern; by Proposition 5 it equals dw(P).
//
// Deprecated: use PreparedQuery.BranchTreewidth.
func BranchTreewidth(p Pattern) (int, error) {
	an, err := analyze(p)
	if err != nil {
		return 0, err
	}
	return an.branchTreewidth()
}

// LocalWidth computes the local-tractability width of the pattern's
// forest (the measure of Letelier et al. that domination width
// strictly generalises).
//
// Deprecated: use PreparedQuery.LocalWidth.
func LocalWidth(p Pattern) (int, error) {
	an, err := analyze(p)
	if err != nil {
		return 0, err
	}
	return an.localWidth(), nil
}

// CertainVars returns the variables bound in every solution of the
// well-designed pattern over every graph (the static analysis of
// Letelier et al.).
//
// Deprecated: use PreparedQuery.CertainVars.
func CertainVars(p Pattern) ([]Term, error) {
	an, err := analyze(p)
	if err != nil {
		return nil, err
	}
	return an.certainVars(), nil
}

// Counterexample witnesses non-containment of two well-designed
// patterns: Mu ∈ ⟦P1⟧G but Mu ∉ ⟦P2⟧G.
type Counterexample = core.Counterexample

// RefuteContainment searches canonical instances for a witness that
// ⟦P1⟧ ⊈ ⟦P2⟧. A returned counterexample is always genuine; absence of
// one does not prove containment (the problem is Π₂ᵖ-complete).
func RefuteContainment(p1, p2 Pattern) (Counterexample, bool, error) {
	an1, err := analyze(p1)
	if err != nil {
		return Counterexample{}, false, err
	}
	an2, err := analyze(p2)
	if err != nil {
		return Counterexample{}, false, err
	}
	ce, ok := core.RefuteContainment(an1.forest, an2.forest)
	return ce, ok, nil
}

// NewUGraph returns an empty undirected graph with n vertices, for use
// as a host of the clique reduction.
func NewUGraph(n int) *UGraph { return graphalg.NewUGraph(n) }

// SolveCliqueViaReduction decides whether the host graph contains a
// k-clique by compiling the Section 4 fpt-reduction to co-wdEVAL and
// evaluating it — Theorem 2 run forwards.
func SolveCliqueViaReduction(k int, h *UGraph) (bool, error) {
	return reduction.SolveClique(k, h)
}
