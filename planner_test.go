package wdsparql

import (
	"context"
	"encoding/json"
	"slices"
	"testing"

	"wdsparql/internal/gen"
)

// Tests of the planner's public surface: WithPlanner / WithPlannerSlack
// engine options, the per-call Planner exec option, the determinism pin
// (planner on and off must stream identically), order-free Count under
// the strict mode, and Explain.

// plannerEngines prepares the same E9 workload on a planner-on and a
// planner-off engine over the same graph.
func plannerEngines(t testing.TB, n int, opts ...Option) (*PreparedQuery, *PreparedQuery) {
	t.Helper()
	g := gen.Random(n, 4*n, 4, 7)
	on, err := NewEngine(g, opts...).Prepare(MustParsePattern(e9Pattern))
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewEngine(g, append(slices.Clone(opts), WithPlanner(false))...).Prepare(MustParsePattern(e9Pattern))
	if err != nil {
		t.Fatal(err)
	}
	return on, off
}

func TestPlannerStreamsAreByteIdentical(t *testing.T) {
	ctx := context.Background()
	for _, cfg := range []struct {
		name string
		opts []Option
	}{
		{"frozen", nil},
		{"sharded", []Option{WithShards(3)}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			on, off := plannerEngines(t, 256, cfg.opts...)
			_, rowsOn := collectSelect(on, ctx)
			_, rowsOff := collectSelect(off, ctx)
			if len(rowsOn) != len(rowsOff) {
				t.Fatalf("planner on streams %d mappings, off %d", len(rowsOn), len(rowsOff))
			}
			for i := range rowsOff {
				if !rowsOn[i].Equal(rowsOff[i]) {
					t.Fatalf("streams diverge at row %d: %s vs %s", i, rowsOn[i], rowsOff[i])
				}
			}

			// The per-call override must cross both engines to the other
			// config and still match.
			_, forcedOff := collectSelect(on, ctx, Planner(false))
			_, forcedOn := collectSelect(off, ctx, Planner(true))
			if len(forcedOff) != len(rowsOff) || len(forcedOn) != len(rowsOff) {
				t.Fatalf("per-call Planner override changed cardinality: %d / %d, want %d",
					len(forcedOff), len(forcedOn), len(rowsOff))
			}
			for i := range rowsOff {
				if !forcedOff[i].Equal(rowsOff[i]) || !forcedOn[i].Equal(rowsOff[i]) {
					t.Fatalf("per-call Planner override diverges at row %d", i)
				}
			}
		})
	}
}

func TestPlannerCountMatchesStream(t *testing.T) {
	ctx := context.Background()
	on, off := plannerEngines(t, 256, WithPlannerSlack(4))
	want, _ := collectSelect(off, ctx)
	for _, q := range []*PreparedQuery{on, off} {
		n, err := q.Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if n != want.Len() {
			t.Fatalf("Count = %d, want %d", n, want.Len())
		}
		// The Limit/Offset window must stay prefix-sliced arithmetic
		// regardless of the strict mode's enumeration order.
		n, err = q.Count(ctx, Offset(3), Limit(5))
		if err != nil {
			t.Fatal(err)
		}
		wantWin := want.Len() - 3
		if wantWin < 0 {
			wantWin = 0
		}
		if wantWin > 5 {
			wantWin = 5
		}
		if n != wantWin {
			t.Fatalf("windowed Count = %d, want %d", n, wantWin)
		}
		// Parallel execution composes with the planner.
		n, err = q.Count(ctx, Parallel(4))
		if err != nil {
			t.Fatal(err)
		}
		if n != want.Len() {
			t.Fatalf("parallel Count = %d, want %d", n, want.Len())
		}
	}
}

func TestPlannerExplain(t *testing.T) {
	on, off := plannerEngines(t, 64)
	ep := on.Explain()
	if !ep.Planner {
		t.Fatal("planner-on engine must explain Planner: true")
	}
	if off.Explain().Planner {
		t.Fatal("planner-off engine must explain Planner: false")
	}
	if len(ep.Trees) == 0 {
		t.Fatal("Explain returned no trees")
	}
	var walk func(n *PlanNode) int
	walk = func(n *PlanNode) int {
		if len(n.Order) != len(n.Patterns) {
			t.Fatalf("node explains %d steps for %d patterns", len(n.Order), len(n.Patterns))
		}
		total := len(n.Patterns)
		for _, s := range n.Order {
			if s.Pattern == "" || s.Side == "" {
				t.Fatalf("unrendered explain step: %+v", s)
			}
			if s.Est < 0 || s.Base < 0 {
				t.Fatalf("negative estimate in step %+v", s)
			}
		}
		for _, c := range n.Children {
			total += walk(c)
		}
		return total
	}
	total := 0
	for _, tr := range ep.Trees {
		total += walk(tr)
	}
	if total != 4 {
		t.Fatalf("explain covers %d patterns, e9Pattern has 4", total)
	}
	// The plan must serialise — it is wdserve's explain=1 payload.
	if _, err := json.Marshal(ep); err != nil {
		t.Fatalf("explain not serialisable: %v", err)
	}
}
