GO ?= go

.PHONY: check vet bench cover serve

# Tier-1 verification: everything must build and every test must pass.
check:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Headline perf trajectory: the E3 frontier benchmark (naive and pebble
# series), the E9 enumeration benchmark (string pipeline vs compiled
# rows), the E10 engine benchmark (prepared vs one-shot execution), the
# E11 storage benchmark (frozen CSR backend vs map backend), the E12
# sharding benchmark (sharded backend vs frozen, per shard count), the
# E13 serving benchmark (HTTP request latency per engine mode plus
# the overload cell's shed%/p99 metrics), the E14 snapshot benchmark
# (cold start to first row: parse vs heap load vs mmap), the E15
# ingest benchmark (parallel pipeline vs sequential parse; overlay
# vs frozen vs refrozen enumeration), the E16 planner benchmark
# (compile-time join ordering on vs off, enumeration and order-free
# count) and the E17 filter benchmark (bind-time filter pushdown on vs
# off, plain and under a projected DISTINCT), recorded as go-test JSON
# events so the numbers are tracked across PRs. Bump the artifact name
# (BENCH_<n>.json) per PR.
BENCH_OUT ?= BENCH_10.json
bench:
	$(GO) test -bench='E3|E9|E10|E11|E12|E13|E14|E15|E16|E17' -benchmem -run='^$$' -json > $(BENCH_OUT)
	@grep 'ns/op' $(BENCH_OUT) | sed -E 's/.*"Output":"(.*)\\n".*/\1/; s/\\t/\t/g'

# Run the streaming SPARQL endpoint over an N-Triples file:
#   make serve GRAPH=data.nt SERVE_FLAGS='-addr :8080 -shards 4'
GRAPH ?= examples/social.nt
serve:
	$(GO) run ./cmd/wdserve -data $(GRAPH) $(SERVE_FLAGS)

# Coverage with the gate CI enforces: the total statement coverage must
# not drop below the recorded baseline (see .github/workflows/ci.yml).
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out | tail -1
