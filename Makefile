GO ?= go

.PHONY: check vet bench

# Tier-1 verification: everything must build and every test must pass.
check:
	$(GO) build ./...
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Headline perf trajectory: the E3 frontier benchmark (naive and pebble
# series), the E9 enumeration benchmark (string pipeline vs compiled
# rows), the E10 engine benchmark (prepared vs one-shot execution) and
# the E11 storage benchmark (frozen CSR backend vs map backend),
# recorded as go-test JSON events so the numbers are tracked across
# PRs. Bump the artifact name (BENCH_<n>.json) per PR.
BENCH_OUT ?= BENCH_4.json
bench:
	$(GO) test -bench='E3|E9|E10|E11' -benchmem -run='^$$' -json > $(BENCH_OUT)
	@grep 'ns/op' $(BENCH_OUT) | sed -E 's/.*"Output":"(.*)\\n".*/\1/; s/\\t/\t/g'
