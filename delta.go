package wdsparql

// This file is the live-write path of the engine: generations instead
// of mutation. An Engine is immutable — its readers stream from sealed
// storage with no locks — so writes cannot go into the engine they
// would disturb. Instead, ApplyDelta forks the graph (shared sealed
// base + copy-on-write dictionary + mutable overlay, see
// rdf.Graph.Fork and rdf/overlay.go) and returns a NEW engine over the
// fork; the caller (internal/server holds the canonical example, with
// refcounted generation swap) publishes the new engine and retires the
// old one once its in-flight readers drain. Refreeze compacts an
// engine's overlay into a fresh sealed base the same way: fork,
// compact, new engine — the old generation's readers never observe the
// compaction. Nothing is ever mutated in place, which is exactly why
// no reader is ever blocked or dropped.

import (
	"wdsparql/internal/rdf"
)

// withGraph returns a new engine over g carrying e's options. It does
// NOT re-seal g (unlike NewEngine): the generation path hands over
// graphs that are already sealed — a fork carrying an overlay, or a
// freshly compacted base — and re-sealing would fold the overlay
// eagerly, defeating the cheap-fork design. The query cache starts
// empty because prepared queries are compiled against a specific
// graph.
func (e *Engine) withGraph(g *rdf.Graph) *Engine {
	ne := &Engine{
		g:         g,
		alg:       e.alg,
		pebbleK:   e.pebbleK,
		workers:   e.workers,
		shards:    e.shards,
		qcacheCap: e.qcacheCap,
	}
	ne.qcache = newLRUCache[*PreparedQuery](ne.qcacheCap)
	return ne
}

// ApplyDelta returns a new engine generation whose graph contains e's
// triples plus ts (duplicates are dropped), without touching e: e's
// graph, dictionary and in-flight query streams are untouched, so
// readers of the old generation keep streaming while the new one is
// built. The new triples live in a mutable overlay on the shared
// sealed base; every read path of the new engine merges them in exact
// insertion order (base first, delta after). Cost is O(existing
// overlay + |ts|), independent of graph size.
//
// The batch is applied atomically in the sense that matters to a
// serving layer: no engine ever exposes a partial batch, because the
// only engine that contains any of ts is the returned one, which
// contains all of ts before any caller can see it.
//
// After ApplyDelta the receiver must be treated as read-only (its
// dictionary is the fork parent); serve from it, but route further
// ApplyDelta/Refreeze calls to the returned generation.
func (e *Engine) ApplyDelta(ts []Triple) *Engine {
	g := e.g.Fork()
	for _, t := range ts {
		g.AddDelta(t)
	}
	return e.withGraph(g)
}

// Refreeze returns a new engine generation with e's overlay compacted
// into a fresh sealed base — frozen if e's base is frozen, re-sharded
// with the same shard count if sharded — restoring pure-CSR read
// performance. Like ApplyDelta it never mutates e: the compaction
// happens on a fork while e's readers keep streaming from the old
// generation. Refreeze on an engine without an overlay returns a
// generation sharing all storage (cheap, and harmless).
func (e *Engine) Refreeze() *Engine {
	return e.withGraph(e.g.Fork().Compact())
}

// OverlayLen reports the number of triples in the engine graph's
// overlay write layer — the serving layer's re-freeze trigger.
func (e *Engine) OverlayLen() int { return e.g.OverlayLen() }
