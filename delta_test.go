package wdsparql

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wdsparql/internal/rdf/backendtest"
)

// deltaSPO mints the i-th synthetic triple of the corpus; all share
// predicate p so one prepared pattern enumerates everything.
func deltaSPO(i int) (s, p, o string) {
	return fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i)
}

func deltaTriple(i int) Triple {
	s, p, o := deltaSPO(i)
	return Triple{S: IRI(s), P: IRI(p), O: IRI(o)}
}

// deltaGraph builds the first n corpus triples into a fresh graph.
func deltaGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddTriple(deltaSPO(i))
	}
	return g
}

// TestEngineApplyDelta pins the generation contract: the delta is
// visible only in the returned engine, the receiver is untouched, and
// the merged stream is identical to an engine built from scratch.
func TestEngineApplyDelta(t *testing.T) {
	for _, shards := range []int{0, 3} {
		var opts []Option
		if shards > 0 {
			opts = append(opts, WithShards(shards))
		}
		delta := make([]Triple, 15)
		for i := range delta {
			delta[i] = deltaTriple(40 + i)
		}

		e0 := NewEngine(deltaGraph(40), opts...)
		e1 := e0.ApplyDelta(delta)
		if e0.OverlayLen() != 0 || e0.Graph().Len() != 40 {
			t.Fatalf("shards=%d: ApplyDelta mutated the receiver: overlay=%d len=%d",
				shards, e0.OverlayLen(), e0.Graph().Len())
		}
		if e1.OverlayLen() != 15 || e1.Graph().Len() != 55 {
			t.Fatalf("shards=%d: new generation overlay=%d len=%d, want 15 and 55",
				shards, e1.OverlayLen(), e1.Graph().Len())
		}

		scratch := NewEngine(deltaGraph(55), opts...)
		if !backendtest.EqualStreams(scratch.Graph(), e1.Graph()) {
			t.Fatalf("shards=%d: delta generation diverges from rebuilt graph", shards)
		}

		// Refreeze: same stream, no overlay, backend shape preserved.
		e2 := e1.Refreeze()
		if e2.OverlayLen() != 0 {
			t.Fatalf("shards=%d: Refreeze left an overlay of %d", shards, e2.OverlayLen())
		}
		if shards > 0 && (!e2.Graph().Sharded() || e2.Graph().ShardCount() != shards) {
			t.Fatalf("shards=%d: Refreeze changed backend shape", shards)
		}
		if shards == 0 && !e2.Graph().Frozen() {
			t.Fatalf("Refreeze of a frozen-base engine did not produce a frozen graph")
		}
		if !backendtest.EqualStreams(scratch.Graph(), e2.Graph()) {
			t.Fatalf("shards=%d: refrozen generation diverges from rebuilt graph", shards)
		}
		if e1.OverlayLen() != 15 {
			t.Fatalf("shards=%d: Refreeze mutated its receiver", shards)
		}

		// Queries on each generation see exactly that generation.
		ctx := context.Background()
		for _, tc := range []struct {
			e    *Engine
			want int
		}{{e0, 40}, {e1, 55}, {e2, 55}} {
			q, err := tc.e.PrepareText(`(?x p ?y)`)
			if err != nil {
				t.Fatal(err)
			}
			n, err := q.Count(ctx)
			if err != nil || n != tc.want {
				t.Fatalf("shards=%d: Count = %d (err %v), want %d", shards, n, err, tc.want)
			}
		}
	}
}

// TestEngineIngestWhileQueryingSoak is the concurrent
// ingest-while-querying soak (run under -race in CI): reader
// goroutines continuously stream PreparedQuery.Rows from whatever
// generation is current while a writer applies delta batches and
// periodically re-freezes, swapping generations through an atomic
// pointer. Pinned: no reader ever errors or observes a partial batch
// (stream lengths only land on batch boundaries), streams are
// prefix-consistent across generations (ingest only appends, so any
// two captured streams must be prefixes of one another), the final
// generation serves every triple, and no goroutines leak.
func TestEngineIngestWhileQueryingSoak(t *testing.T) {
	const (
		baseN      = 500
		batches    = 40
		batchSize  = 25
		refreezeAt = 8 // batches between refreezes
		readers    = 4
	)
	baseline := runtime.NumGoroutine()

	var cur atomic.Pointer[Engine]
	cur.Store(NewEngine(deltaGraph(baseN), WithShards(2)))

	ctx := context.Background()
	var writerDone atomic.Bool
	var mu sync.Mutex
	var longest []uint64 // longest row stream observed, as (s,o) ID pairs

	checkStream := func(got []uint64) error {
		mu.Lock()
		defer mu.Unlock()
		short, long := got, longest
		if len(short) > len(long) {
			short, long = long, short
		}
		for i := range short {
			if short[i] != long[i] {
				return fmt.Errorf("streams diverge at row %d: %x vs %x", i, short[i], long[i])
			}
		}
		if len(got) > len(longest) {
			longest = got
		}
		return nil
	}

	readerErr := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !writerDone.Load() {
				e := cur.Load()
				q, err := e.PrepareText(`(?x p ?y)`)
				if err != nil {
					readerErr <- err
					return
				}
				xs, ok1 := q.Layout().Slot("x")
				ys, ok2 := q.Layout().Slot("y")
				if !ok1 || !ok2 {
					readerErr <- fmt.Errorf("layout is missing x or y")
					return
				}
				var got []uint64
				for row := range q.Rows(ctx) {
					got = append(got, uint64(row[xs])<<32|uint64(row[ys]))
				}
				// Zero dropped rows / no partial batch: every stream
				// length is the base plus a whole number of batches.
				if n := len(got); n < baseN || (n-baseN)%batchSize != 0 {
					readerErr <- fmt.Errorf("stream of %d rows is not base plus whole batches", n)
					return
				}
				if err := checkStream(got); err != nil {
					readerErr <- err
					return
				}
			}
		}()
	}

	next := baseN
	for b := 0; b < batches; b++ {
		batch := make([]Triple, batchSize)
		for i := range batch {
			batch[i] = deltaTriple(next)
			next++
		}
		e := cur.Load().ApplyDelta(batch)
		if (b+1)%refreezeAt == 0 {
			e = e.Refreeze()
			if e.OverlayLen() != 0 {
				t.Errorf("refreeze left overlay of %d", e.OverlayLen())
			}
		}
		cur.Store(e)
		time.Sleep(time.Millisecond) // let readers interleave with swaps
	}
	writerDone.Store(true)
	wg.Wait()
	close(readerErr)
	for err := range readerErr {
		t.Fatal(err)
	}

	// The final generation serves everything, stream-identical to a
	// from-scratch build.
	final := cur.Load()
	q, err := final.PrepareText(`(?x p ?y)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count(ctx)
	if err != nil || n != next {
		t.Fatalf("final Count = %d (err %v), want %d", n, err, next)
	}
	scratch := NewEngine(deltaGraph(next), WithShards(2))
	if !backendtest.EqualStreams(scratch.Graph(), final.Graph()) {
		t.Fatal("final generation diverges from rebuilt graph")
	}

	// Zero goroutine leaks from the generation machinery.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+3 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}
