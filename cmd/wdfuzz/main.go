// Command wdfuzz cross-validates the evaluators and the storage
// backends on randomized instances: for each trial it draws a random
// well-designed pattern and a random graph, evaluates with the
// compositional semantics (both join strategies), the Lemma 1 subtree
// enumeration, the top-down enumeration, and probes memberships with
// the naive and pebble decision procedures. The top-down enumeration
// additionally runs against every storage backend — the map graph, a
// frozen clone, sharded clones at each -shards count, and overlay
// twins of each (a sealed base carrying half the triples, the rest
// applied as live deltas on the mutable overlay) — and the full row
// streams are diffed byte for byte (content AND order), so a
// backend that returns the right set in the wrong order fails a trial.
// With -planner (the default) each trial additionally diffs the query
// planner's search modes on every backend: the planned mode must
// reproduce the heuristic row stream byte for byte, and the strict
// plan-following mode must agree on the solution count. Any
// disagreement is printed with a reproducible seed and the process
// exits non-zero.
//
// With -filters > 0 (the default) each trial additionally draws a
// random FILTER-decorated query — every other trial wrapped in a
// SELECT projection, half of those DISTINCT — and diffs its compiled
// row stream across every backend, both planner modes and both filter
// placements (bind-time pushdown vs all-deferred): the streams must be
// byte-identical, and their solution set must match the compositional
// sparql.Eval reference, which applies filters post hoc over the
// unfiltered subevaluations.
//
// Usage:
//
//	wdfuzz [-trials 1000] [-seed 1] [-union] [-depth 3] [-shards 1,2,7] [-planner] [-filters 2]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"slices"

	"wdsparql/internal/bench"
	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/hom"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

func main() {
	trials := flag.Int("trials", 500, "number of random instances")
	seed := flag.Int64("seed", 1, "random seed")
	union := flag.Bool("union", false, "generate top-level UNION patterns")
	depth := flag.Int("depth", 3, "operator tree depth")
	shards := flag.String("shards", "1,2,7", "comma-separated shard counts for the sharded backend")
	planner := flag.Bool("planner", true, "diff planner modes (heuristic vs planned stream, strict count) per trial")
	filters := flag.Int("filters", 2, "max FILTER wraps on the filtered-query dimension (0 disables it)")
	flag.Parse()

	counts, err := bench.ParseShardCounts(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wdfuzz: -shards: %v\n", err)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	for trial := 0; trial < *trials; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: *depth, Union: *union})
		if !ok {
			fmt.Fprintln(os.Stderr, "wdfuzz: pattern generator exhausted")
			os.Exit(2)
		}
		g := randomGraph(rng)
		if !checkTrial(trial, p, g, counts, *planner) {
			failures++
			if failures >= 5 {
				break
			}
		}
		if *filters > 0 {
			q, ok := gen.RandomWDQuery(rng, gen.PatternOpts{
				Depth: *depth, Union: *union, Filters: *filters, Select: trial%2 == 0,
			})
			if !ok {
				fmt.Fprintln(os.Stderr, "wdfuzz: query generator exhausted")
				os.Exit(2)
			}
			if !checkFilterTrial(trial, q, randomGraph(rng), counts, *planner) {
				failures++
				if failures >= 5 {
					break
				}
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "wdfuzz: %d failing trial(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("wdfuzz: %d trials passed (seed %d, shard counts %v)\n", *trials, *seed, counts)
}

func randomGraph(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	nodes := []string{"a", "b", "c", "d"}
	preds := []string{"p", "q"}
	n := 4 + rng.Intn(10)
	for i := 0; i < n; i++ {
		g.AddTriple(nodes[rng.Intn(len(nodes))], preds[rng.Intn(len(preds))], nodes[rng.Intn(len(nodes))])
	}
	return g
}

// collectStream materialises the top-down row stream of the forest
// over one backend as cloned rows. Each backend is compiled separately
// against the same forest; identical dictionary IDs (clones preserve
// them) make the rows directly comparable.
func collectStream(f ptree.Forest, g *rdf.Graph) []rdf.Row {
	var out []rdf.Row
	core.CompileForest(f, g).Rows(func(r rdf.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// overlayTwin rebuilds g as a sealed base carrying roughly half the
// triples plus a mutable delta overlay holding the rest. Replaying the
// triples in insertion order (TriplesID, not the sorted Triples)
// reproduces g's dictionary IDs exactly, so the twin's row stream is
// directly comparable to the map reference — the overlay merge must be
// unobservable just like the backends. shards ≤ 1 freezes the base;
// otherwise it is sharded.
func overlayTwin(g *rdf.Graph, shards int) *rdf.Graph {
	ids := g.TriplesID()
	ts := make([]rdf.Triple, len(ids))
	for i, t := range ids {
		ts[i] = g.Dict().DecodeTriple(t)
	}
	cut := len(ts) / 2
	og := rdf.NewGraph()
	for _, t := range ts[:cut] {
		og.AddTriple(t.S.Value, t.P.Value, t.O.Value)
	}
	if shards > 1 {
		og.Shard(shards)
	} else {
		og.Freeze()
	}
	for _, t := range ts[cut:] {
		og.AddDeltaTriple(t.S.Value, t.P.Value, t.O.Value)
	}
	return og
}

// collectTuned materialises the row stream of an already-compiled
// program under one search mode.
func collectTuned(fp *core.ForestProgram, mode hom.SearchMode) []rdf.Row {
	var out []rdf.Row
	fp.Tuned(mode, 0, nil).Rows(func(r rdf.Row) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

func checkTrial(trial int, p sparql.Pattern, g *rdf.Graph, shardCounts []int, planner bool) bool {
	report := func(format string, args ...interface{}) bool {
		fmt.Fprintf(os.Stderr, "trial %d FAILED: %s\npattern: %s\ndata:\n%s",
			trial, fmt.Sprintf(format, args...), p, rdf.FormatGraph(g))
		return false
	}
	ref := sparql.Eval(p, g)
	if hash := sparql.EvalHashJoin(p, g); hash.Len() != ref.Len() {
		return report("hash-join %d vs nested-loop %d", hash.Len(), ref.Len())
	}
	f, err := ptree.WDPF(p)
	if err != nil {
		return report("wdpf: %v", err)
	}
	enum := core.EnumerateForest(f, g)
	if enum.Len() != ref.Len() {
		return report("enumeration %d vs compositional %d", enum.Len(), ref.Len())
	}
	topdown := core.EnumerateTopDownForest(f, g)
	if topdown.Len() != ref.Len() {
		return report("top-down %d vs compositional %d", topdown.Len(), ref.Len())
	}
	for _, mu := range ref.Slice() {
		if !enum.Contains(mu) || !topdown.Contains(mu) {
			return report("missing solution %s", mu)
		}
	}
	// Storage backends must be unobservable: the row stream over the
	// map graph is the reference, and the frozen clone plus every
	// sharded clone must reproduce it byte for byte — content and
	// order — through the same compiled enumeration.
	want := collectStream(f, g)
	if len(want) != ref.Len() {
		return report("row stream %d vs compositional %d", len(want), ref.Len())
	}
	backends := []struct {
		name string
		g    *rdf.Graph
	}{{"frozen", g.Clone().Freeze()}, {"frozen+ovl", overlayTwin(g, 0)}}
	for _, n := range shardCounts {
		backends = append(backends, struct {
			name string
			g    *rdf.Graph
		}{fmt.Sprintf("sharded(%d)", n), g.Clone().Shard(n)}, struct {
			name string
			g    *rdf.Graph
		}{fmt.Sprintf("sharded(%d)+ovl", n), overlayTwin(g, n)})
	}
	for _, b := range backends {
		got := collectStream(f, b.g)
		if len(got) != len(want) {
			return report("%s stream has %d rows, map has %d", b.name, len(got), len(want))
		}
		for i := range want {
			if !slices.Equal(got[i], want[i]) {
				return report("%s stream diverges at row %d: %v vs %v", b.name, i, got[i], want[i])
			}
		}
	}
	// Planner dimension: on every backend, the planned mode must
	// reproduce the heuristic stream byte for byte (the determinism
	// contract behind WithPlanner), and the strict plan-following mode
	// — order-free by design — must agree on the cardinality.
	if planner {
		all := append([]struct {
			name string
			g    *rdf.Graph
		}{{"map", g}}, backends...)
		for _, b := range all {
			fp := core.CompileForest(f, b.g)
			heur := collectTuned(fp, hom.ModeHeuristic)
			planned := collectTuned(fp, hom.ModePlanned)
			if len(planned) != len(heur) {
				return report("%s planner stream has %d rows, heuristic has %d", b.name, len(planned), len(heur))
			}
			for i := range heur {
				if !slices.Equal(planned[i], heur[i]) {
					return report("%s planner stream diverges at row %d: %v vs %v", b.name, i, planned[i], heur[i])
				}
			}
			n := 0
			fp.Tuned(hom.ModeStrict, 0, nil).Rows(func(rdf.Row) bool { n++; return true })
			if n != len(heur) {
				return report("%s strict-mode count %d, heuristic stream has %d rows", b.name, n, len(heur))
			}
		}
	}
	k := core.DominationWidth(f)
	return checkProbes(report, ref, k, f, g)
}

func checkProbes(report func(string, ...interface{}) bool, ref *rdf.MappingSet, k int, f ptree.Forest, g *rdf.Graph) bool {
	probes := append(ref.Slice(),
		rdf.Mapping{"x": "a"}, rdf.Mapping{"x": "a", "y": "b"}, rdf.Mapping{})
	for _, mu := range probes {
		want := ref.Contains(mu)
		if got := core.EvalNaive(f, g, mu); got != want {
			return report("EvalNaive(%s)=%v want %v", mu, got, want)
		}
		if got := core.EvalPebble(k, f, g, mu); got != want {
			return report("EvalPebble(k=%d)(%s)=%v want %v", k, mu, got, want)
		}
	}
	return true
}

// compileFiltered mirrors the engine's prepare path: unwrap the
// optional SELECT, translate to a wdPF, compile with the requested
// filter placement, and apply the projection view.
func compileFiltered(q sparql.Pattern, g *rdf.Graph, noPush bool) (*core.ForestProgram, error) {
	inner := q
	var proj []string
	distinct := false
	sel, isSel := q.(sparql.Select)
	if isSel {
		inner = sel.Where
		distinct = sel.Distinct
		for _, v := range sel.Vars {
			proj = append(proj, v.Value)
		}
	}
	f, err := ptree.WDPF(inner)
	if err != nil {
		return nil, err
	}
	fp := core.CompileForestOpts(f, g, core.CompileOpts{NoFilterPushdown: noPush})
	if isSel {
		fp = fp.Project(proj, distinct)
	}
	return fp, nil
}

// checkFilterTrial diffs one FILTER/SELECT-decorated query: the row
// stream must be byte-identical across every backend × both filter
// placements × both planner modes, and its deduplicated solution set
// must match the compositional reference (which filters post hoc).
func checkFilterTrial(trial int, q sparql.Pattern, g *rdf.Graph, shardCounts []int, planner bool) bool {
	report := func(format string, args ...interface{}) bool {
		fmt.Fprintf(os.Stderr, "filter trial %d FAILED: %s\nquery: %s\ndata:\n%s",
			trial, fmt.Sprintf(format, args...), sparql.Format(q), rdf.FormatGraph(g))
		return false
	}
	backends := []struct {
		name string
		g    *rdf.Graph
	}{{"map", g}, {"frozen", g.Clone().Freeze()}, {"frozen+ovl", overlayTwin(g, 0)}}
	for _, n := range shardCounts {
		backends = append(backends, struct {
			name string
			g    *rdf.Graph
		}{fmt.Sprintf("sharded(%d)", n), g.Clone().Shard(n)}, struct {
			name string
			g    *rdf.Graph
		}{fmt.Sprintf("sharded(%d)+ovl", n), overlayTwin(g, n)})
	}
	var want []rdf.Row
	for _, b := range backends {
		for _, noPush := range []bool{false, true} {
			fp, err := compileFiltered(q, b.g, noPush)
			if err != nil {
				return report("compile [%s]: %v", b.name, err)
			}
			modes := []hom.SearchMode{hom.ModeHeuristic}
			if planner {
				modes = append(modes, hom.ModePlanned)
			}
			for _, mode := range modes {
				got := collectTuned(fp, mode)
				if want == nil {
					want = got
					continue
				}
				if len(got) != len(want) {
					return report("[%s noPush=%v mode=%v] %d rows, reference stream %d",
						b.name, noPush, mode, len(got), len(want))
				}
				for i := range want {
					if !slices.Equal(got[i], want[i]) {
						return report("[%s noPush=%v mode=%v] stream diverges at row %d: %v vs %v",
							b.name, noPush, mode, i, got[i], want[i])
					}
				}
			}
		}
	}
	// Set-level agreement with the compositional semantics. Projection
	// without DISTINCT may repeat projected rows in the stream, so the
	// comparison deduplicates first.
	ref := sparql.EvalID(q, g)
	fp, err := compileFiltered(q, g, false)
	if err != nil {
		return report("compile: %v", err)
	}
	set := rdf.NewIDMappingSet(fp.Layout(), g.Dict().NumIRIs())
	fp.Rows(func(r rdf.Row) bool { set.Add(r); return true })
	if set.Len() != ref.Len() {
		return report("pipeline set %d vs compositional %d", set.Len(), ref.Len())
	}
	dec := set.Decode(g.Dict())
	for _, mu := range ref.Decode(g.Dict()).Slice() {
		if !dec.Contains(mu) {
			return report("pipeline missing solution %s", mu)
		}
	}
	return true
}
