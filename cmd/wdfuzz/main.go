// Command wdfuzz cross-validates the evaluators on randomized
// instances: for each trial it draws a random well-designed pattern
// and a random graph, evaluates with the compositional semantics (both
// join strategies), the Lemma 1 subtree enumeration, the top-down
// enumeration, and probes memberships with the naive and pebble
// decision procedures. Any disagreement is printed with a
// reproducible seed and the process exits non-zero.
//
// Usage:
//
//	wdfuzz [-trials 1000] [-seed 1] [-union] [-depth 3]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

func main() {
	trials := flag.Int("trials", 500, "number of random instances")
	seed := flag.Int64("seed", 1, "random seed")
	union := flag.Bool("union", false, "generate top-level UNION patterns")
	depth := flag.Int("depth", 3, "operator tree depth")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	failures := 0
	for trial := 0; trial < *trials; trial++ {
		p, ok := gen.RandomWDPattern(rng, gen.PatternOpts{Depth: *depth, Union: *union})
		if !ok {
			fmt.Fprintln(os.Stderr, "wdfuzz: pattern generator exhausted")
			os.Exit(2)
		}
		g := randomGraph(rng)
		if !checkTrial(trial, p, g) {
			failures++
			if failures >= 5 {
				break
			}
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "wdfuzz: %d failing trial(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("wdfuzz: %d trials passed (seed %d)\n", *trials, *seed)
}

func randomGraph(rng *rand.Rand) *rdf.Graph {
	g := rdf.NewGraph()
	nodes := []string{"a", "b", "c", "d"}
	preds := []string{"p", "q"}
	n := 4 + rng.Intn(10)
	for i := 0; i < n; i++ {
		g.AddTriple(nodes[rng.Intn(len(nodes))], preds[rng.Intn(len(preds))], nodes[rng.Intn(len(nodes))])
	}
	return g
}

func checkTrial(trial int, p sparql.Pattern, g *rdf.Graph) bool {
	report := func(format string, args ...interface{}) bool {
		fmt.Fprintf(os.Stderr, "trial %d FAILED: %s\npattern: %s\ndata:\n%s",
			trial, fmt.Sprintf(format, args...), p, rdf.FormatGraph(g))
		return false
	}
	ref := sparql.Eval(p, g)
	if hash := sparql.EvalHashJoin(p, g); hash.Len() != ref.Len() {
		return report("hash-join %d vs nested-loop %d", hash.Len(), ref.Len())
	}
	f, err := ptree.WDPF(p)
	if err != nil {
		return report("wdpf: %v", err)
	}
	enum := core.EnumerateForest(f, g)
	if enum.Len() != ref.Len() {
		return report("enumeration %d vs compositional %d", enum.Len(), ref.Len())
	}
	topdown := core.EnumerateTopDownForest(f, g)
	if topdown.Len() != ref.Len() {
		return report("top-down %d vs compositional %d", topdown.Len(), ref.Len())
	}
	// The frozen CSR backend must be unobservable: the same top-down
	// enumeration over a frozen clone yields the identical stream.
	frozen := core.EnumerateTopDownForest(f, g.Clone().Freeze())
	if frozen.Len() != ref.Len() {
		return report("frozen backend %d vs compositional %d", frozen.Len(), ref.Len())
	}
	for _, mu := range ref.Slice() {
		if !enum.Contains(mu) || !topdown.Contains(mu) || !frozen.Contains(mu) {
			return report("missing solution %s", mu)
		}
	}
	k := core.DominationWidth(f)
	probes := append(ref.Slice(),
		rdf.Mapping{"x": "a"}, rdf.Mapping{"x": "a", "y": "b"}, rdf.Mapping{})
	for _, mu := range probes {
		want := ref.Contains(mu)
		if got := core.EvalNaive(f, g, mu); got != want {
			return report("EvalNaive(%s)=%v want %v", mu, got, want)
		}
		if got := core.EvalPebble(k, f, g, mu); got != want {
			return report("EvalPebble(k=%d)(%s)=%v want %v", k, mu, got, want)
		}
	}
	return true
}
