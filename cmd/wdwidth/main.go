// Command wdwidth reports the structural width measures of a
// well-designed SPARQL graph pattern: domination width (the paper's
// Definition 2, the exact tractability frontier), branch treewidth
// (Definition 3, for UNION-free patterns) and the local-tractability
// width of Letelier et al.
//
// Usage:
//
//	wdwidth -query '((?x p ?y) OPT (?y q ?z))'
//
// Exit status 0 and a summary line per measure. The computation is
// exponential in the query size (width is a static property); keep
// queries small. The command is a thin shell over Engine.Prepare on a
// data-less engine: widths are part of a prepared query's cached
// static analysis.
package main

import (
	"flag"
	"fmt"
	"os"

	"wdsparql"
)

func main() {
	query := flag.String("query", "", "graph pattern")
	verbose := flag.Bool("v", false, "print the pattern forest")
	flag.Parse()

	if *query == "" {
		fmt.Fprintln(os.Stderr, "wdwidth: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	p, err := wdsparql.ParsePattern(*query)
	if err != nil {
		fatal(err)
	}
	// A nil graph gives a purely static engine: Prepare runs the
	// well-designedness check and the wdpf translation, and the width
	// accessors below are computed once and cached on the query.
	q, err := wdsparql.NewEngine(nil).Prepare(p)
	if err != nil {
		fatal(err)
	}
	f := q.Forest()
	if *verbose {
		fmt.Print(f)
	}
	fmt.Printf("trees:            %d\n", len(f))
	fmt.Printf("domination width: %d\n", q.DominationWidth())
	if bw, err := q.BranchTreewidth(); err == nil {
		fmt.Printf("branch treewidth: %d (UNION-free: equals dw by Prop. 5)\n", bw)
	}
	fmt.Printf("local width:      %d\n", q.LocalWidth())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
