// Command wdwidth reports the structural width measures of a
// well-designed SPARQL graph pattern: domination width (the paper's
// Definition 2, the exact tractability frontier), branch treewidth
// (Definition 3, for UNION-free patterns) and the local-tractability
// width of Letelier et al.
//
// Usage:
//
//	wdwidth -query '((?x p ?y) OPT (?y q ?z))'
//
// Exit status 0 and a summary line per measure. The computation is
// exponential in the query size (width is a static property); keep
// queries small.
package main

import (
	"flag"
	"fmt"
	"os"

	"wdsparql/internal/core"
	"wdsparql/internal/ptree"
	"wdsparql/internal/sparql"
)

func main() {
	query := flag.String("query", "", "graph pattern")
	verbose := flag.Bool("v", false, "print the pattern forest")
	flag.Parse()

	if *query == "" {
		fmt.Fprintln(os.Stderr, "wdwidth: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	p, err := sparql.Parse(*query)
	if err != nil {
		fatal(err)
	}
	if err := sparql.CheckWellDesigned(p); err != nil {
		fatal(err)
	}
	f, err := ptree.WDPF(p)
	if err != nil {
		fatal(err)
	}
	if *verbose {
		fmt.Print(f)
	}
	fmt.Printf("trees:            %d\n", len(f))
	fmt.Printf("domination width: %d\n", core.DominationWidth(f))
	if sparql.IsUnionFree(p) {
		fmt.Printf("branch treewidth: %d (UNION-free: equals dw by Prop. 5)\n", core.BranchTreewidth(f[0]))
	}
	fmt.Printf("local width:      %d\n", core.LocalWidth(f))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
