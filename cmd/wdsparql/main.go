// Command wdsparql evaluates a well-designed SPARQL graph pattern over
// an RDF graph through the prepared-query engine: the pattern is
// compiled once (wdsparql.Engine.Prepare) and solutions stream as they
// are enumerated, so Ctrl-C — or reaching -limit — stops the
// enumeration immediately instead of after materialising ⟦P⟧G.
//
// Usage:
//
//	wdsparql -query '((?x p ?y) OPT (?y q ?z))' -data graph.nt [flags]
//
// With -mu the command decides wdEVAL for one mapping; without it the
// solution stream is printed (windowed by -limit/-offset, parallelised
// by -workers, over sharded storage with -shards N). -explain prints
// the compiled join order as JSON instead of executing (-planner=false
// ablates the statistics-driven ordering). The -algo flag selects between the natural algorithm
// ("naive"), the Theorem 1 pebble algorithm ("pebble", with -k the
// domination-width bound) and the compositional reference semantics
// ("compositional"); "topdown" forces the enumeration-based check.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"wdsparql"
	"wdsparql/internal/core"
	"wdsparql/internal/interrupt"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

func main() {
	query := flag.String("query", "", "graph pattern, e.g. '((?x p ?y) OPT (?y q ?z))'")
	dataPath := flag.String("data", "", "RDF graph file (N-Triples subset); '-' for stdin")
	muArg := flag.String("mu", "", "mapping to test, e.g. 'x=a,y=b'; empty prints all solutions")
	algo := flag.String("algo", "naive", "naive | pebble | compositional | topdown")
	k := flag.Int("k", 1, "domination-width bound for -algo pebble")
	limit := flag.Int("limit", -1, "print at most this many solutions (negative: all)")
	offset := flag.Int("offset", 0, "skip the first n solutions")
	workers := flag.Int("workers", 1, "enumeration worker-pool size")
	shards := flag.Int("shards", 1, "storage shard count (≥ 2 shards the graph by subject hash)")
	stats := flag.Bool("stats", false, "print data statistics and evaluation counters")
	explain := flag.Bool("explain", false, "print the compiled query plan as JSON and exit")
	planner := flag.Bool("planner", true, "use the compile-time join-order planner")
	flag.Parse()

	if *query == "" || *dataPath == "" {
		fmt.Fprintln(os.Stderr, "wdsparql: -query and -data are required")
		flag.Usage()
		os.Exit(2)
	}

	// The first interrupt cancels the context — the prepared-query
	// streams stop at their next yield boundary and the command exits
	// cleanly. A second interrupt (enumeration wedged, output blocked)
	// force-exits immediately.
	ctx, stop := interrupt.Context(context.Background())
	defer stop()

	pattern, err := sparql.Parse(*query)
	if err != nil {
		fatal(err)
	}
	g, err := readGraph(*dataPath)
	if err != nil {
		fatal(err)
	}

	alg := wdsparql.AlgNaive
	if *algo == "pebble" {
		alg = wdsparql.AlgPebble
	}
	engine := wdsparql.NewEngine(g,
		wdsparql.WithAlgorithm(alg), wdsparql.WithPebbleK(*k),
		wdsparql.WithWorkers(*workers), wdsparql.WithShards(*shards),
		wdsparql.WithPlanner(*planner))

	if *stats {
		backend := "map"
		switch {
		case g.Sharded():
			backend = fmt.Sprintf("sharded (CSR, %d shards by subject hash)", g.ShardCount())
		case g.Frozen():
			backend = "frozen (CSR, bulk-loaded)"
		}
		fmt.Fprintf(os.Stderr, "data: %s\nbackend: %s\n", rdf.Stats(g), backend)
	}
	q, err := engine.Prepare(pattern)
	if err != nil {
		fatal(err)
	}

	if *explain {
		out, err := json.MarshalIndent(q.Explain(), "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	if *muArg == "" {
		printSolutions(ctx, q, g, *algo, *limit, *offset)
		return
	}
	mu, err := parseMu(*muArg)
	if err != nil {
		fatal(err)
	}
	ans, err := decide(ctx, q, g, mu, *algo, *k, *stats)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("µ %s ⟦P⟧G\n", map[bool]string{true: "∈", false: "∉"}[ans])
	if !ans {
		os.Exit(1)
	}
}

func readGraph(path string) (*rdf.Graph, error) {
	if path == "-" {
		return rdf.ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rdf.ReadGraph(f)
}

func parseMu(s string) (rdf.Mapping, error) {
	mu := rdf.NewMapping()
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("wdsparql: bad binding %q (want var=iri)", part)
		}
		mu[strings.TrimPrefix(strings.TrimSpace(kv[0]), "?")] = strings.TrimSpace(kv[1])
	}
	return mu, nil
}

func decide(ctx context.Context, q *wdsparql.PreparedQuery, g *rdf.Graph, mu rdf.Mapping, algo string, k int, stats bool) (bool, error) {
	switch algo {
	case "compositional":
		return sparql.Contains(q.Pattern(), g, mu), nil
	case "topdown":
		set, err := q.All(ctx)
		if err != nil {
			return false, err
		}
		return set.Contains(mu), nil
	case "naive", "pebble":
		if !stats {
			return q.Ask(ctx, mu)
		}
		// The counter-instrumented paths live below the engine.
		if algo == "naive" {
			ans, st := core.EvalNaiveStats(q.Forest(), g, mu)
			fmt.Fprintf(os.Stderr, "naive: trees=%d matched=%d extension-tests=%d\n",
				st.TreesProbed, st.SubtreesMatched, st.ExtensionTests)
			return ans, nil
		}
		ans, st := core.EvalPebbleStats(k, q.Forest(), g, mu)
		fmt.Fprintf(os.Stderr, "pebble(k=%d): trees=%d matched=%d tests=%d assignments=%d\n",
			k, st.TreesProbed, st.SubtreesMatched, st.ExtensionTests, st.PebbleAssignments)
		return ans, nil
	}
	return false, fmt.Errorf("wdsparql: unknown algorithm %q", algo)
}

func printSolutions(ctx context.Context, q *wdsparql.PreparedQuery, g *rdf.Graph, algo string, limit, offset int) {
	if algo == "compositional" {
		// The reference semantics materialise ⟦P⟧G, so the window is
		// applied to the materialised set rather than the enumeration.
		sols := sparql.EvalHashJoin(q.Pattern(), g).Slice()
		if offset > len(sols) {
			offset = len(sols)
		}
		sols = sols[offset:]
		if limit >= 0 && limit < len(sols) {
			sols = sols[:limit]
		}
		for _, mu := range sols {
			fmt.Println(mu)
		}
		fmt.Fprintf(os.Stderr, "%d solution(s)\n", len(sols))
		return
	}
	n := 0
	for mu := range q.Select(ctx, wdsparql.Limit(limit), wdsparql.Offset(offset)) {
		fmt.Println(mu)
		n++
	}
	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "interrupted after %d solution(s)\n", n)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "%d solution(s)\n", n)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
