// Command wdsparql evaluates a well-designed SPARQL graph pattern over
// an RDF graph.
//
// Usage:
//
//	wdsparql -query '((?x p ?y) OPT (?y q ?z))' -data graph.nt [flags]
//
// With -mu the command decides wdEVAL for one mapping; without it the
// full solution set ⟦P⟧G is printed. The -algo flag selects between
// the natural algorithm ("naive"), the Theorem 1 pebble algorithm
// ("pebble", with -k the domination-width bound) and the compositional
// reference semantics ("compositional").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wdsparql/internal/core"
	"wdsparql/internal/ptree"
	"wdsparql/internal/rdf"
	"wdsparql/internal/sparql"
)

func main() {
	query := flag.String("query", "", "graph pattern, e.g. '((?x p ?y) OPT (?y q ?z))'")
	dataPath := flag.String("data", "", "RDF graph file (N-Triples subset); '-' for stdin")
	muArg := flag.String("mu", "", "mapping to test, e.g. 'x=a,y=b'; empty prints all solutions")
	algo := flag.String("algo", "naive", "naive | pebble | compositional | topdown")
	k := flag.Int("k", 1, "domination-width bound for -algo pebble")
	stats := flag.Bool("stats", false, "print data statistics and evaluation counters")
	flag.Parse()

	if *query == "" || *dataPath == "" {
		fmt.Fprintln(os.Stderr, "wdsparql: -query and -data are required")
		flag.Usage()
		os.Exit(2)
	}

	pattern, err := sparql.Parse(*query)
	if err != nil {
		fatal(err)
	}
	if err := sparql.CheckWellDesigned(pattern); err != nil {
		fatal(err)
	}
	g, err := readGraph(*dataPath)
	if err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "data: %s\n", rdf.Stats(g))
	}

	if *muArg == "" {
		printSolutions(pattern, g, *algo)
		return
	}
	mu, err := parseMu(*muArg)
	if err != nil {
		fatal(err)
	}
	ans, err := decide(pattern, g, mu, *algo, *k, *stats)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("µ %s ⟦P⟧G\n", map[bool]string{true: "∈", false: "∉"}[ans])
	if !ans {
		os.Exit(1)
	}
}

func readGraph(path string) (*rdf.Graph, error) {
	if path == "-" {
		return rdf.ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rdf.ReadGraph(f)
}

func parseMu(s string) (rdf.Mapping, error) {
	mu := rdf.NewMapping()
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("wdsparql: bad binding %q (want var=iri)", part)
		}
		mu[strings.TrimPrefix(strings.TrimSpace(kv[0]), "?")] = strings.TrimSpace(kv[1])
	}
	return mu, nil
}

func decide(p sparql.Pattern, g *rdf.Graph, mu rdf.Mapping, algo string, k int, stats bool) (bool, error) {
	switch algo {
	case "compositional":
		return sparql.Contains(p, g, mu), nil
	case "topdown":
		f, err := ptree.WDPF(p)
		if err != nil {
			return false, err
		}
		return core.EnumerateTopDownForest(f, g).Contains(mu), nil
	case "naive", "pebble":
		f, err := ptree.WDPF(p)
		if err != nil {
			return false, err
		}
		if algo == "naive" {
			ans, st := core.EvalNaiveStats(f, g, mu)
			if stats {
				fmt.Fprintf(os.Stderr, "naive: trees=%d matched=%d extension-tests=%d\n",
					st.TreesProbed, st.SubtreesMatched, st.ExtensionTests)
			}
			return ans, nil
		}
		ans, st := core.EvalPebbleStats(k, f, g, mu)
		if stats {
			fmt.Fprintf(os.Stderr, "pebble(k=%d): trees=%d matched=%d tests=%d assignments=%d\n",
				k, st.TreesProbed, st.SubtreesMatched, st.ExtensionTests, st.PebbleAssignments)
		}
		return ans, nil
	}
	return false, fmt.Errorf("wdsparql: unknown algorithm %q", algo)
}

func printSolutions(p sparql.Pattern, g *rdf.Graph, algo string) {
	var set *rdf.MappingSet
	switch algo {
	case "compositional":
		set = sparql.EvalHashJoin(p, g)
	case "topdown":
		f, err := ptree.WDPF(p)
		if err != nil {
			fatal(err)
		}
		set = core.EnumerateTopDownForest(f, g)
	default:
		f, err := ptree.WDPF(p)
		if err != nil {
			fatal(err)
		}
		set = core.EnumerateForest(f, g)
	}
	for _, mu := range set.Slice() {
		fmt.Println(mu)
	}
	fmt.Fprintf(os.Stderr, "%d solution(s)\n", set.Len())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
