// Command wdserve is the hardened streaming SPARQL-over-HTTP endpoint:
// it loads an RDF graph, builds a prepared-query engine over it, and
// serves the SPARQL protocol on /sparql with chunked SPARQL-JSON or
// TSV results streamed straight off the enumeration. Structural
// robustness comes from internal/server: admission control with load
// shedding (503 + Retry-After), per-request deadlines/limits enforced
// through the request context, write-deadline handling for stalled
// clients, per-request panic isolation, and graceful drain on
// SIGINT/SIGTERM (a second signal force-exits).
//
// Usage:
//
//	wdserve -data graph.nt [-addr :8080] [flags]
//	wdserve -snapshot graph.wdsnap [-snapshot-mode mmap|heap] [flags]
//
// With -snapshot the graph comes off a checksummed snapshot image
// (built by wdsnap) instead of being parsed: mmap mode starts serving
// in milliseconds regardless of graph size, and POST /reload re-reads
// the snapshot path and swaps the engine in without dropping a single
// in-flight request.
//
// Live writes: POST /ingest accepts an N-Triples stream (optionally
// gzipped) and applies it in atomic batches to a mutable overlay on
// the sealed graph — queries keep streaming, no restart, no reload.
// When the overlay passes -refreeze-at triples it is compacted into a
// fresh sealed base behind the live readers. Startup loads with the
// parallel ingest pipeline (-load-workers) and reports progress.
//
// Operational endpoints: /healthz (liveness), /readyz (flips to 503
// while draining), /stats (serving counters as JSON), /reload (POST;
// snapshot serving only), /ingest (POST; live writes).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"wdsparql"
	"wdsparql/internal/ingest"
	"wdsparql/internal/interrupt"
	"wdsparql/internal/rdf"
	"wdsparql/internal/server"
)

func main() {
	var (
		dataPath = flag.String("data", "", "RDF graph file (N-Triples subset, optionally gzipped); '-' for stdin")
		snapPath = flag.String("snapshot", "", "snapshot image to serve from (see wdsnap); enables POST /reload")
		snapMode = flag.String("snapshot-mode", "mmap", "snapshot loader: mmap | heap")
		addr     = flag.String("addr", ":8080", "listen address")

		algo    = flag.String("algo", "naive", "evaluation algorithm: naive | pebble")
		k       = flag.Int("k", 1, "domination-width bound for -algo pebble")
		workers = flag.Int("workers", 1, "default enumeration worker-pool size")
		shards  = flag.Int("shards", 1, "storage shard count (≥ 2 shards the graph by subject hash)")
		qcache  = flag.Int("query-cache", 128, "prepared-query LRU capacity (0 disables)")

		gate         = flag.Int("gate", 8, "queries executing concurrently")
		queue        = flag.Int("queue", 0, "bounded wait queue beyond the gate (0: same as -gate)")
		queueTimeout = flag.Duration("queue-timeout", time.Second, "max wait in the queue before shedding")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline when none is given")
		maxTimeout   = flag.Duration("max-timeout", 5*time.Minute, "cap on the ?timeout= parameter")
		maxLimit     = flag.Int("max-limit", 0, "cap on rows per request (0: unlimited)")
		writeTimeout = flag.Duration("write-timeout", 15*time.Second, "write deadline armed at every flush")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown grace before hard-cancel")

		loadWorkers    = flag.Int("load-workers", 0, "parallel-ingest workers for the -data load (0: GOMAXPROCS)")
		ingestBatch    = flag.Int("ingest-batch", 5000, "triples per atomically applied POST /ingest batch")
		refreezeAt     = flag.Int("refreeze-at", 50000, "overlay size that triggers a re-freeze (< 0 disables)")
		ingestMaxBytes = flag.Int64("ingest-max-bytes", 1<<30, "bound on a POST /ingest body in bytes")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "wdserve: ", log.LstdFlags)
	if (*dataPath == "") == (*snapPath == "") {
		fmt.Fprintln(os.Stderr, "wdserve: exactly one of -data or -snapshot is required")
		flag.Usage()
		os.Exit(2)
	}

	alg := wdsparql.AlgNaive
	if *algo == "pebble" {
		alg = wdsparql.AlgPebble
	}
	opts := []wdsparql.Option{
		wdsparql.WithAlgorithm(alg), wdsparql.WithPebbleK(*k),
		wdsparql.WithWorkers(*workers), wdsparql.WithShards(*shards),
		wdsparql.WithQueryCache(*qcache),
	}

	cfg := server.Config{
		MaxConcurrent:  *gate,
		MaxQueue:       *queue,
		QueueTimeout:   *queueTimeout,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxLimit:       *maxLimit,
		MaxWorkers:     max(*workers, 1),
		WriteTimeout:   *writeTimeout,
		IngestBatch:    *ingestBatch,
		RefreezeAt:     *refreezeAt,
		MaxIngestBytes: *ingestMaxBytes,
	}

	var g *rdf.Graph
	if *snapPath != "" {
		mode, err := wdsparql.ParseSnapshotMode(*snapMode)
		if err != nil {
			logger.Fatal(err)
		}
		load := func() (*wdsparql.Engine, *server.SnapshotStats, io.Closer, error) {
			eng, snap, err := wdsparql.NewEngineFromSnapshot(*snapPath, mode, opts...)
			if err != nil {
				return nil, nil, nil, err
			}
			return eng, server.SnapshotStatsOf(snap.Info()), snap, nil
		}
		eng, stats, closer, err := load()
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("snapshot %s: %s, crc %s, loaded in %.1fms (%s)",
			*snapPath, stats.Mode, stats.Checksum, stats.LoadMs,
			func() string {
				if mode == wdsparql.SnapshotMmap {
					return "pages fault in on demand"
				}
				return "fully resident"
			}())
		cfg.Engine, cfg.Snapshot, cfg.Closer, cfg.Reload = eng, stats, closer, load
		g = eng.Graph()
	} else {
		var err error
		start := time.Now()
		g, err = readGraph(*dataPath, *loadWorkers, *shards, logger)
		if err != nil {
			logger.Fatal(err)
		}
		logger.Printf("loaded %d triples in %.1fs", g.Len(), time.Since(start).Seconds())
		cfg.Engine = wdsparql.NewEngine(g, opts...)
		g = cfg.Engine.Graph()
	}

	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	backend := "map"
	switch {
	case g.Sharded():
		backend = fmt.Sprintf("sharded (%d shards)", g.ShardCount())
	case g.Frozen():
		backend = "frozen"
	}
	logger.Printf("serving %d triples (%s backend) on http://%s/sparql (gate %d)",
		g.Len(), backend, ln.Addr(), *gate)

	// First SIGINT/SIGTERM starts the drain; a second force-exits.
	ctx, stop := interrupt.Context(context.Background())
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Fatal(err) // listener failed before any shutdown request
	case <-ctx.Done():
	}

	logger.Printf("draining (up to %s; interrupt again to force exit)", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		logger.Printf("drain deadline exceeded: in-flight streams hard-cancelled (%v)", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatal(err)
	}
	logger.Print("shut down cleanly")
}

// readGraph loads the -data file through the parallel ingest pipeline,
// pre-sharded for the serving backend, logging progress at most every
// two seconds so a multi-gigabyte load is visibly alive.
func readGraph(path string, workers, shards int, logger *log.Logger) (*rdf.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	lastLog := time.Now()
	return ingest.Load(r, ingest.Options{
		Workers: workers,
		Shards:  shards,
		Progress: func(bytes int64, triples int) {
			if time.Since(lastLog) >= 2*time.Second {
				lastLog = time.Now()
				logger.Printf("loading: %d triples (%.1f MiB read)", triples, float64(bytes)/(1<<20))
			}
		},
	})
}
