// Command wdsnap builds, inspects and verifies persistent graph
// snapshots — the checksummed binary images (DESIGN.md §6) that wdserve
// serves with -snapshot and reloads with POST /reload.
//
// Usage:
//
//	wdsnap build -data graph.nt [-shards n] -o graph.wdsnap
//	wdsnap inspect graph.wdsnap
//	wdsnap verify [-mode heap|mmap] [-deep] graph.wdsnap
//
// build parses an N-Triples file (optionally gzipped; '-' for stdin),
// seals it into the frozen backend (or the sharded backend with
// -shards ≥ 2) and writes the image crash-atomically: the output path
// never holds a partial file.
//
// inspect validates and prints only the header and section table —
// cheap even for a huge image, since no payload is read.
//
// verify runs the full load-time validation battery (every section
// CRC, every structural invariant) by actually loading the image;
// -deep additionally rebuilds the indexes from the triples and
// compares them slot for slot. Exit status 0 means the image is
// serveable; 1 means it is not, with the reason on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"wdsparql/internal/rdf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "wdsnap: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdsnap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  wdsnap build -data graph.nt [-shards n] -o graph.wdsnap
  wdsnap inspect graph.wdsnap
  wdsnap verify [-mode heap|mmap] [-deep] graph.wdsnap`)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("wdsnap build", flag.ExitOnError)
	dataPath := fs.String("data", "", "RDF graph file (N-Triples subset, optionally gzipped); '-' for stdin")
	out := fs.String("o", "", "output snapshot path")
	shards := fs.Int("shards", 1, "storage shard count (≥ 2 writes a sharded image)")
	_ = fs.Parse(args)
	if *dataPath == "" || *out == "" {
		return fmt.Errorf("build needs -data and -o")
	}

	g, err := readGraph(*dataPath)
	if err != nil {
		return err
	}
	if *shards >= 2 {
		g.Shard(*shards)
	}
	if err := g.WriteSnapshot(*out); err != nil {
		return err
	}
	man, err := rdf.InspectSnapshot(*out)
	if err != nil {
		return fmt.Errorf("written image fails inspection: %w", err)
	}
	printInfo(man.Info)
	return nil
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("wdsnap inspect", flag.ExitOnError)
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs exactly one snapshot path")
	}
	man, err := rdf.InspectSnapshot(fs.Arg(0))
	if err != nil {
		return err
	}
	printInfo(man.Info)
	fmt.Printf("%-12s %5s %12s %12s %10s\n", "section", "shard", "offset", "length", "crc")
	for _, s := range man.Sections {
		fmt.Printf("%-12s %5d %12d %12d   %08x\n", s.Name, s.Shard, s.Offset, s.Length, s.CRC)
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("wdsnap verify", flag.ExitOnError)
	modeStr := fs.String("mode", "heap", "loader to verify with: heap | mmap")
	deep := fs.Bool("deep", false, "also rebuild the indexes from the triples and compare")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("verify needs exactly one snapshot path")
	}
	mode, err := rdf.ParseSnapshotMode(*modeStr)
	if err != nil {
		return err
	}
	snap, err := rdf.LoadSnapshot(fs.Arg(0), mode)
	if err != nil {
		return err
	}
	defer snap.Close()
	printInfo(snap.Info())
	if *deep {
		if err := snap.VerifyDeep(); err != nil {
			return err
		}
		fmt.Println("deep verify: indexes match a from-scratch rebuild")
	}
	fmt.Println("ok")
	return nil
}

func printInfo(info rdf.SnapshotInfo) {
	shape := info.Kind
	if info.Shards > 1 {
		shape = fmt.Sprintf("%s (%d shards)", info.Kind, info.Shards)
	}
	fmt.Printf("%s: v%d %s, %d triples, %d IRIs, %d bytes, crc %08x",
		info.Path, info.Version, shape, info.Triples, info.IRIs, info.FileSize, info.Checksum)
	if info.Mode != 0 {
		fmt.Printf(", loaded via %s in %s", info.Mode, info.LoadTime.Round(10e3))
	}
	fmt.Println()
}

func readGraph(path string) (*rdf.Graph, error) {
	if path == "-" {
		return rdf.ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return rdf.ReadGraph(f)
}
