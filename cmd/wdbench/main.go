// Command wdbench runs the experiment suite E1–E17 that reproduces the
// constructions and complexity claims of "The Tractability Frontier of
// Well-designed SPARQL Queries" (Romero, PODS 2018) and prints one
// table per experiment. See DESIGN.md for the experiment index and
// the BENCH_<n>.json series for recorded results.
//
// Usage:
//
//	wdbench [-only E3] [-full] [-workers N] [-shards 1,2,4] [-cpuprofile f] [-memprofile f]
//
// -only runs a single experiment (the others are not executed, so a
// profiled -only run measures exactly that experiment). -full extends
// the E3 sweep into the regime where the natural algorithm needs tens
// of seconds per instance. E8 (batched decision) and E9 (top-down
// enumeration throughput: string pipeline vs compiled rows, rows/sec,
// sequential vs a pool of -workers workers) honour -workers; E12 (the
// sharded storage backend) sweeps the -shards shard counts; E13 (the
// serving layer) drives HTTP load at an in-process wdserve endpoint;
// E14 measures snapshot cold start (parse vs heap load vs mmap); E15
// measures the parallel ingest pipeline against the sequential reader
// and the live delta overlay against pure-frozen enumeration (honours
// -workers for the decode pool); E16 ablates the compile-time query
// planner against the per-node heuristic (wall time, search nodes and
// count probes, with byte-identical streams as the gate).
// -cpuprofile and -memprofile write pprof profiles of the run, so perf
// work on the evaluation and enumeration hot paths can attach
// evidence:
//
//	wdbench -only E9 -workers 8 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
//
// Every experiment cross-validates its evaluation paths (the "agree"
// columns span all three storage backends where data is involved);
// any disagreement makes wdbench exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"wdsparql/internal/bench"
)

func main() {
	os.Exit(run())
}

// run carries the whole command so that error exits unwind through the
// defers (in particular StopCPUProfile, which flushes the profile).
func run() int {
	only := flag.String("only", "", "run a single experiment (E1..E17, A1..A3, M1)")
	full := flag.Bool("full", false, "extended sweeps (E3 up to k=7; ~1 min extra)")
	ablations := flag.Bool("ablations", false, "also run the ablation suite A1..A3")
	micro := flag.Bool("micro", false, "also run the micro-benchmarks M1")
	workers := flag.Int("workers", runtime.NumCPU(), "worker-pool size for the batched (E8) and enumeration (E9) experiments")
	shards := flag.String("shards", "1,2,4", "comma-separated shard counts for the sharded-backend (E12) experiment")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Parse()

	if *only != "" && !validID(*only) {
		fmt.Fprintf(os.Stderr, "wdbench: unknown experiment %q (want E1..E17, A1..A3 or M1)\n", *only)
		return 2
	}
	shardCounts, err := bench.ParseShardCounts(*shards)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wdbench: -shards: %v\n", err)
		return 2
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wdbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wdbench: -cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	specs := bench.Experiments(*full, *workers, shardCounts...)
	if *ablations || strings.HasPrefix(strings.ToUpper(*only), "A") {
		specs = append(specs, bench.AblationExperiments()...)
	}
	if *micro || strings.HasPrefix(strings.ToUpper(*only), "M") {
		specs = append(specs, bench.MicroExperiments()...)
	}
	disagreed := false
	for _, s := range specs {
		if *only != "" && !strings.EqualFold(s.ID, *only) {
			continue
		}
		tbl := s.Run()
		tbl.Render(os.Stdout)
		if !tbl.Agreement() {
			fmt.Fprintf(os.Stderr, "wdbench: %s: agreement check failed (evaluation paths diverged)\n", tbl.ID)
			disagreed = true
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wdbench: -memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "wdbench: -memprofile: %v\n", err)
			return 1
		}
	}
	if disagreed {
		return 1
	}
	return 0
}

func validID(id string) bool {
	switch strings.ToUpper(id) {
	case "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "A1", "A2", "A3", "M1":
		return true
	}
	return false
}
