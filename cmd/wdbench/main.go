// Command wdbench runs the experiment suite E1–E8 that reproduces the
// constructions and complexity claims of "The Tractability Frontier of
// Well-designed SPARQL Queries" (Romero, PODS 2018) and prints one
// table per experiment. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results.
//
// Usage:
//
//	wdbench [-only E3] [-full]
//
// -full extends the E3 sweep into the regime where the natural
// algorithm needs tens of seconds per instance.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"wdsparql/internal/bench"
)

func main() {
	only := flag.String("only", "", "run a single experiment (E1..E8, A1..A3, M1)")
	full := flag.Bool("full", false, "extended sweeps (E3 up to k=7; ~1 min extra)")
	ablations := flag.Bool("ablations", false, "also run the ablation suite A1..A3")
	micro := flag.Bool("micro", false, "also run the micro-benchmarks M1")
	workers := flag.Int("workers", runtime.NumCPU(), "worker-pool size for the batched experiment E8")
	flag.Parse()

	if *only != "" && !validID(*only) {
		fmt.Fprintf(os.Stderr, "wdbench: unknown experiment %q (want E1..E8, A1..A3 or M1)\n", *only)
		os.Exit(2)
	}
	tables := bench.SuiteWorkers(*full, *workers)
	if *ablations || strings.HasPrefix(strings.ToUpper(*only), "A") {
		tables = append(tables, bench.Ablations()...)
	}
	if *micro || strings.HasPrefix(strings.ToUpper(*only), "M") {
		tables = append(tables, bench.Micro()...)
	}
	for _, t := range tables {
		if *only != "" && !strings.EqualFold(t.ID, *only) {
			continue
		}
		t.Render(os.Stdout)
	}
}

func validID(id string) bool {
	switch strings.ToUpper(id) {
	case "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "A1", "A2", "A3", "M1":
		return true
	}
	return false
}
