package wdsparql

import (
	"testing"
)

// Tests of the public API surface: everything a downstream user
// touches must work through the root package alone.

func TestPublicQuickstartFlow(t *testing.T) {
	pattern := MustParsePattern(`((?p knows ?q) OPT (?p email ?m))`)
	if !IsWellDesigned(pattern) {
		t.Fatal("well-designed")
	}
	data := MustParseGraph(`
alice knows bob .
alice email alice@example.org .
bob knows carol .
`)
	solutions, err := Solutions(pattern, data)
	if err != nil {
		t.Fatal(err)
	}
	if solutions.Len() != 2 {
		t.Fatalf("solutions: %v", solutions.Slice())
	}
	if !solutions.Contains(Mapping{"p": "alice", "q": "bob", "m": "alice@example.org"}) {
		t.Fatal("missing extended solution")
	}
	if !solutions.Contains(Mapping{"p": "bob", "q": "carol"}) {
		t.Fatal("missing bare solution")
	}
	// Cross-check with the compositional semantics.
	ref := EvalCompositional(pattern, data)
	if ref.Len() != solutions.Len() {
		t.Fatal("evaluators disagree")
	}
}

func TestPublicEvaluateBothAlgorithms(t *testing.T) {
	pattern := MustParsePattern(`((?x p ?y) OPT (?y q ?z))`)
	data := MustParseGraph("a p b .\nb q c .\nd p e .\n")
	dw, err := DominationWidth(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if dw != 1 {
		t.Fatalf("dw=%d", dw)
	}
	bw, err := BranchTreewidth(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if bw != dw {
		t.Fatal("Prop 5")
	}
	lw, err := LocalWidth(pattern)
	if err != nil || lw != 1 {
		t.Fatalf("local width: %d, %v", lw, err)
	}
	cases := []struct {
		mu   Mapping
		want bool
	}{
		{Mapping{"x": "a", "y": "b", "z": "c"}, true},
		{Mapping{"x": "a", "y": "b"}, false}, // extends, not maximal
		{Mapping{"x": "d", "y": "e"}, true},  // no q-edge from e
		{Mapping{"x": "zzz", "y": "b"}, false},
	}
	for _, tc := range cases {
		for _, alg := range []Algorithm{AlgNaive, AlgPebble} {
			got, err := Evaluate(alg, dw, pattern, data, tc.mu)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("%v(%s)=%v, want %v", alg, tc.mu, got, tc.want)
			}
		}
	}
}

func TestPublicForestAPI(t *testing.T) {
	pattern := MustParsePattern(`(?x p ?y) UNION ((?x q ?y) OPT (?y q ?z))`)
	f, err := ToForest(pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("forest size: %d", len(f))
	}
	data := MustParseGraph("a q b .\nb q c .\n")
	if !EvaluateForest(AlgNaive, 1, f, data, Mapping{"x": "a", "y": "b", "z": "c"}) {
		t.Fatal("member expected")
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := ParsePattern("((?x p"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := ParseGraph("a p"); err == nil {
		t.Fatal("graph parse error expected")
	}
	notWD := MustParsePattern(`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`)
	if err := CheckWellDesigned(notWD); err == nil {
		t.Fatal("well-designedness violation expected")
	}
	if _, err := Solutions(notWD, NewGraph()); err == nil {
		t.Fatal("Solutions must reject non-well-designed patterns")
	}
	if _, err := Evaluate(AlgNaive, 1, notWD, NewGraph(), Mapping{}); err == nil {
		t.Fatal("Evaluate must reject non-well-designed patterns")
	}
	if _, err := DominationWidth(notWD); err == nil {
		t.Fatal("DominationWidth must reject non-well-designed patterns")
	}
}

func TestPublicCliqueReduction(t *testing.T) {
	h := NewUGraph(4)
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(0, 2)
	got, err := SolveCliqueViaReduction(3, h)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("triangle should be found")
	}
	h2 := NewUGraph(4)
	h2.AddEdge(0, 1)
	h2.AddEdge(1, 2)
	got, err = SolveCliqueViaReduction(3, h2)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("no triangle in a path")
	}
}

func TestPublicCertainVarsAndContainment(t *testing.T) {
	p1 := MustParsePattern(`(?x p ?y)`)
	p2 := MustParsePattern(`((?x p ?y) OPT (?y q ?z))`)
	cv, err := CertainVars(p2)
	if err != nil || len(cv) != 2 {
		t.Fatalf("certain vars: %v %v", cv, err)
	}
	ce, ok, err := RefuteContainment(p1, p2)
	if err != nil || !ok {
		t.Fatalf("expected counterexample: %v", err)
	}
	if ce.G == nil || len(ce.Mu) == 0 {
		t.Fatal("counterexample must carry a graph and mapping")
	}
	if _, ok, _ := RefuteContainment(p2, p2); ok {
		t.Fatal("self-containment")
	}
}

func TestPublicTermConstructors(t *testing.T) {
	if !Var("?x").IsVar() || Var("x") != Var("?x") {
		t.Fatal("Var normalisation")
	}
	if !IRI("p").IsIRI() {
		t.Fatal("IRI")
	}
}
