package wdsparql

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// The query-cache seam: LRU mechanics, the PrepareText identity
// contract (hit returns the same *PreparedQuery; distinct texts of the
// same pattern still share one analysis), miss-on-error, and
// concurrent use.

func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache[int](2)
	c.add("a", 1)
	c.add("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before capacity was reached")
	}
	// a was just used, so inserting c must evict b (the LRU entry).
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction although it was least recently used")
	}
	for key, want := range map[string]int{"a": 1, "c": 3} {
		if got, ok := c.get(key); !ok || got != want {
			t.Fatalf("get(%q) = %d, %v; want %d, true", key, got, ok, want)
		}
	}
	if n := c.len(); n != 2 {
		t.Fatalf("len = %d, want 2", n)
	}
	st := c.cacheStats()
	if st.Cap != 2 || st.Size != 2 || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestLRUCacheFirstAddWins(t *testing.T) {
	c := newLRUCache[int](4)
	if got := c.add("k", 1); got != 1 {
		t.Fatalf("first add returned %d, want 1", got)
	}
	// A second add of the same key must return the already-cached
	// value: concurrent preparers all adopt one shared entry.
	if got := c.add("k", 2); got != 1 {
		t.Fatalf("second add returned %d, want the first value 1", got)
	}
}

func TestNilLRUCacheIsDisabled(t *testing.T) {
	var c *lruCache[int]
	if _, ok := c.get("k"); ok {
		t.Fatal("nil cache reported a hit")
	}
	if got := c.add("k", 7); got != 7 {
		t.Fatalf("nil cache add returned %d, want the passed value", got)
	}
	if st := c.cacheStats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestPrepareTextCacheHitReturnsSameQuery(t *testing.T) {
	g := MustParseGraph("a p b .\nb q c .")
	e := NewEngine(g, WithQueryCache(8))
	const src = `((?x p ?y) OPT (?y q ?z))`
	q1, err := e.PrepareText(src)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.PrepareText(src)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("cache hit returned a distinct PreparedQuery")
	}
	st := e.QueryCacheStats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 || st.Cap != 8 {
		t.Fatalf("unexpected cache stats: %+v", st)
	}
	// The cached query must still answer correctly.
	n, err := q2.Count(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v; want 1, nil", n, err)
	}
}

func TestPrepareTextErrorsNotCached(t *testing.T) {
	e := NewEngine(nil, WithQueryCache(8))
	for _, src := range []string{
		"((?x p", // parse error
		`((?x p ?y) OPT (?y q ?z)) AND (?z r ?w)`, // not well-designed: ?z escapes the OPT
	} {
		if _, err := e.PrepareText(src); err == nil {
			t.Fatalf("PrepareText(%q) succeeded, want error", src)
		}
	}
	if st := e.QueryCacheStats(); st.Size != 0 {
		t.Fatalf("errors occupied cache slots: %+v", st)
	}
}

func TestPrepareTextWithoutCache(t *testing.T) {
	e := NewEngine(MustParseGraph("a p b ."))
	q, err := e.PrepareText(`(?x p ?y)`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := q.Count(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("Count = %d, %v; want 1, nil", n, err)
	}
	if st := e.QueryCacheStats(); st != (CacheStats{}) {
		t.Fatalf("disabled cache has non-zero stats: %+v", st)
	}
}

func TestPrepareTextConcurrent(t *testing.T) {
	g := MustParseGraph("a p b .\nb p c .\nc p a .")
	e := NewEngine(g, WithQueryCache(4))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Two distinct texts so gets and adds interleave.
			src := fmt.Sprintf(`(?x p ?y%d)`, i%2)
			for j := 0; j < 50; j++ {
				q, err := e.PrepareText(src)
				if err != nil {
					t.Error(err)
					return
				}
				if n, err := q.Count(context.Background()); err != nil || n != 3 {
					t.Errorf("Count = %d, %v; want 3, nil", n, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := e.QueryCacheStats()
	if st.Size != 2 {
		t.Fatalf("cache size = %d, want 2: %+v", st.Size, st)
	}
	if st.Hits+st.Misses != 8*50 {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*50)
	}
}

// TestPrepareTextConcurrentEviction hammers a tiny LRU with far more
// distinct query texts than it can hold, from many goroutines, while a
// sampler reads stats throughout. Under -race this pins the locking
// discipline of the eviction path; the assertions pin that occupancy
// never exceeds the capacity (neither mid-run nor at the end) and that
// the counters stay consistent — every PrepareText call is exactly one
// hit or one miss, and every distinct text must have missed at least
// once.
func TestPrepareTextConcurrentEviction(t *testing.T) {
	g := MustParseGraph("a p b .\nb p c .\nc p a .")
	const (
		capacity = 4
		workers  = 8
		iters    = 200
		distinct = 32 // texts in flight: 8× the capacity, so eviction churns
	)
	e := NewEngine(g, WithQueryCache(capacity))

	stop := make(chan struct{})
	var overCap atomic.Int64
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := e.QueryCacheStats(); st.Size > capacity {
				overCap.Store(int64(st.Size))
			}
			runtime.Gosched()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				src := fmt.Sprintf(`(?x p ?y%d)`, (w*iters+j)%distinct)
				q, err := e.PrepareText(src)
				if err != nil {
					t.Error(err)
					return
				}
				if n, err := q.Count(context.Background()); err != nil || n != 3 {
					t.Errorf("Count = %d, %v; want 3, nil", n, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	sampler.Wait()

	if n := overCap.Load(); n != 0 {
		t.Fatalf("cache occupancy reached %d, capacity %d", n, capacity)
	}
	st := e.QueryCacheStats()
	if st.Size > capacity || st.Size == 0 {
		t.Fatalf("final size = %d, want 1..%d", st.Size, capacity)
	}
	if st.Hits+st.Misses != workers*iters {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, workers*iters)
	}
	if st.Misses < distinct {
		t.Fatalf("misses = %d, want ≥ %d (every distinct text misses at least once)", st.Misses, distinct)
	}
}

func TestAnalysisCacheLRUSharing(t *testing.T) {
	// Two engines preparing the same pattern text must share one
	// analysis (the width computations run at most once per pattern).
	p := MustParsePattern(`((?x p ?y) OPT (?y q ?z))`)
	e1 := NewEngine(MustParseGraph("a p b ."))
	e2 := NewEngine(MustParseGraph("c p d ."))
	q1, err := e1.Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e2.Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	if q1.an != q2.an {
		t.Fatal("engines did not share the memoised analysis")
	}
}
