package wdsparql

// Persistent snapshots at the engine level. The graph layer
// (internal/rdf) owns the wire format, the checksummed loaders and the
// validation battery; this file re-exports that API and adds the one
// composition the serving stack uses: snapshot file → sealed graph →
// Engine, in one call. See DESIGN.md §6 for the format.

import "wdsparql/internal/rdf"

// Re-exported snapshot types.
type (
	// Snapshot is a loaded snapshot: a sealed read-only graph plus
	// the resources (possibly an mmap) backing it. Close when done.
	Snapshot = rdf.Snapshot
	// SnapshotInfo describes a loaded or inspected snapshot.
	SnapshotInfo = rdf.SnapshotInfo
	// SnapshotMode selects the heap or mmap loader.
	SnapshotMode = rdf.SnapshotMode
	// SnapshotManifest is a snapshot file's header plus section table.
	SnapshotManifest = rdf.SnapshotManifest
)

// Snapshot load modes.
const (
	// SnapshotHeap reads the image into the heap.
	SnapshotHeap = rdf.SnapshotHeap
	// SnapshotMmap maps the image read-only; load time is independent
	// of graph size.
	SnapshotMmap = rdf.SnapshotMmap
)

// LoadSnapshot loads and fully validates the snapshot at path. Graph
// write access goes through (*Graph).WriteSnapshot, which any Graph
// (including one built by GraphBuilder) exposes.
func LoadSnapshot(path string, mode SnapshotMode) (*Snapshot, error) {
	return rdf.LoadSnapshot(path, mode)
}

// InspectSnapshot validates and returns only the header and section
// table of a snapshot file, without reading the payload.
func InspectSnapshot(path string) (*SnapshotManifest, error) {
	return rdf.InspectSnapshot(path)
}

// ParseSnapshotMode parses the CLI spelling of a snapshot mode
// ("heap" or "mmap").
func ParseSnapshotMode(s string) (SnapshotMode, error) {
	return rdf.ParseSnapshotMode(s)
}

// NewEngineFromSnapshot loads the snapshot at path and builds an
// engine over its graph — the millisecond cold-start path: no parsing,
// no interning, no freeze; the arenas come straight off the image
// (page-faulted on demand in SnapshotMmap mode). The returned Snapshot
// owns the backing resources: close it only after the engine is no
// longer in use. Options apply as in NewEngine; note WithShards(n)
// against a snapshot of a different kind re-seals the graph in memory,
// deliberately trading the zero-parse load for the requested backend.
func NewEngineFromSnapshot(path string, mode SnapshotMode, opts ...Option) (*Engine, *Snapshot, error) {
	snap, err := rdf.LoadSnapshot(path, mode)
	if err != nil {
		return nil, nil, err
	}
	return NewEngine(snap.Graph(), opts...), snap, nil
}
