package wdsparql

import (
	"context"
	"sort"
	"strings"
	"testing"
)

// Engine-level coverage for the FILTER / SELECT surface: PrepareText
// through Rows/Select/Count/All/Ask, the Explain annotations, and the
// WithFilterPushdown ablation switch.

func filterTestEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	return NewEngine(MustParseGraph("a p b .\nc p d .\nb q e .\n"), opts...)
}

func TestPrepareSelectFilter(t *testing.T) {
	ctx := context.Background()
	eng := filterTestEngine(t)

	q, err := eng.PrepareText(`SELECT ?x WHERE (((?x p ?y) OPT (?y q ?z)) FILTER BOUND(?z))`)
	if err != nil {
		t.Fatal(err)
	}
	// Only (a,b,e) survives BOUND(?z); projected to ?x.
	var got []string
	for mu := range q.Select(ctx) {
		if len(mu) != 1 {
			t.Fatalf("unprojected variable leaked: %v", mu)
		}
		got = append(got, mu["x"])
	}
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("Select = %v", got)
	}
	if n, err := q.Count(ctx); err != nil || n != 1 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	set, err := q.All(ctx)
	if err != nil || set.Len() != 1 || !set.Contains(Mapping{"x": "a"}) {
		t.Fatalf("All = %v, %v", set, err)
	}
	// Rows carry the projected single-slot layout.
	if q.Layout().Width() != 1 {
		t.Fatalf("projected layout width = %d", q.Layout().Width())
	}
	for r := range q.Rows(ctx) {
		if len(r) != 1 {
			t.Fatalf("projected row width = %d", len(r))
		}
	}
}

func TestSelectDistinctDedups(t *testing.T) {
	ctx := context.Background()
	eng := NewEngine(MustParseGraph("a p b .\na p c .\nd p b .\n"))

	plain, err := eng.PrepareText(`SELECT ?x WHERE (?x p ?y)`)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := plain.Count(ctx)
	if n != 3 {
		t.Fatalf("projection without DISTINCT must keep duplicates: %d", n)
	}
	dist, err := eng.PrepareText(`SELECT DISTINCT ?x WHERE (?x p ?y)`)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for mu := range dist.Select(ctx) {
		got = append(got, mu["x"])
	}
	sort.Strings(got)
	if strings.Join(got, " ") != "a d" {
		t.Fatalf("DISTINCT = %v", got)
	}
}

func TestAskOnFilteredQueries(t *testing.T) {
	ctx := context.Background()
	eng := filterTestEngine(t)

	q, err := eng.PrepareText(`((?x p ?y) FILTER ?x != a)`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		mu   Mapping
		want bool
	}{
		{Mapping{"x": "c", "y": "d"}, true},
		{Mapping{"x": "a", "y": "b"}, false}, // filtered out
		{Mapping{"x": "c", "y": "b"}, false}, // not a solution
		{Mapping{"x": "c", "y": "nosuchiri"}, false},
	} {
		ok, err := q.Ask(ctx, tc.mu)
		if err != nil || ok != tc.want {
			t.Fatalf("Ask(%v) = %v, %v; want %v", tc.mu, ok, err, tc.want)
		}
	}

	// Ask against a projected query matches on projected rows only.
	sel, err := eng.PrepareText(`SELECT DISTINCT ?x WHERE (?x p ?y)`)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := sel.Ask(ctx, Mapping{"x": "c"}); err != nil || !ok {
		t.Fatalf("Ask projected member = %v, %v", ok, err)
	}
	if ok, err := sel.Ask(ctx, Mapping{"x": "b"}); err != nil || ok {
		t.Fatalf("Ask projected non-member = %v, %v", ok, err)
	}
}

func TestFilterPushdownAblationIdentical(t *testing.T) {
	ctx := context.Background()
	const src = `SELECT ?x ?z WHERE (((?x p ?y) OPT (?y q ?z)) FILTER ?x != c)`
	collect := func(eng *Engine) []string {
		q, err := eng.PrepareText(src)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for r := range q.Rows(ctx) {
			var parts []string
			for _, v := range r {
				parts = append(parts, string(rune('0'+int(v)%64)))
			}
			out = append(out, strings.Join(parts, ","))
		}
		return out
	}
	on := collect(filterTestEngine(t))
	off := collect(filterTestEngine(t, WithFilterPushdown(false)))
	if strings.Join(on, "|") != strings.Join(off, "|") {
		t.Fatalf("pushdown changed the stream:\non:  %v\noff: %v", on, off)
	}
}

func TestExplainFilterAnnotations(t *testing.T) {
	eng := filterTestEngine(t)
	q, err := eng.PrepareText(
		`SELECT DISTINCT ?x WHERE ((((?x p ?y) OPT (?y q ?z)) FILTER BOUND(?z)) FILTER ?x != c)`)
	if err != nil {
		t.Fatal(err)
	}
	ex := q.Explain()
	if len(ex.Projection) != 1 || ex.Projection[0] != "x" || !ex.Distinct {
		t.Fatalf("projection block: %+v", ex)
	}
	var pushed, deferred bool
	var walk func(n *PlanNode)
	walk = func(n *PlanNode) {
		for _, f := range n.Filters {
			pushed = pushed || strings.HasSuffix(f, "[pushed]")
			deferred = deferred || strings.HasSuffix(f, "[deferred]")
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, tree := range ex.Trees {
		walk(tree)
	}
	if !pushed || !deferred {
		t.Fatalf("filter annotations missing: pushed=%v deferred=%v", pushed, deferred)
	}
}
