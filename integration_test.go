package wdsparql

import (
	"testing"

	"wdsparql/internal/core"
	"wdsparql/internal/gen"
	"wdsparql/internal/ptree"
)

// End-to-end integration tests following the paper's own narrative,
// exercised exclusively through public API plus the gen families.

// Example 1 and Example 2 of the paper: P1 is well-designed, P2 is
// not; P = P1 UNION (...) translates to the two-tree forest of
// Example 2.
func TestPaperExamples1And2(t *testing.T) {
	p1 := MustParsePattern(
		`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))`)
	if !IsWellDesigned(p1) {
		t.Fatal("Example 1: P1 is well-designed")
	}
	p2 := MustParsePattern(
		`(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2)))`)
	if IsWellDesigned(p2) {
		t.Fatal("Example 1: P2 is not well-designed")
	}
	p := MustParsePattern(`
		(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))
		UNION
		((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))`)
	f, err := ToForest(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 2 {
		t.Fatalf("Example 2: wdpf(P) = {T1, T2}, got %d trees", len(f))
	}
	if f[0].Size() != 3 || f[1].Size() != 2 {
		t.Fatalf("Example 2 tree shapes: %d and %d nodes", f[0].Size(), f[1].Size())
	}
}

// The full Theorem 1 / Theorem 3 story on F_3: dw = 1, the pebble
// algorithm with k = dw decides correctly on data engineered so the
// naive algorithm must refute a 3-clique, and both answers match the
// ground-truth enumeration.
func TestPaperFrontierStory(t *testing.T) {
	k := 3
	f := gen.Fk(k)
	if dw := core.DominationWidth(f); dw != 1 {
		t.Fatalf("dw(F_3)=%d", dw)
	}
	if lw := core.LocalWidth(f); lw != k-1 {
		t.Fatalf("local width %d", lw)
	}
	for _, withQ := range []bool{false, true} {
		for _, withClique := range []bool{false, true} {
			g := gen.FkData(k, 12, withQ, withClique)
			mu := gen.FkMu()
			truth := core.EnumerateForest(f, g).Contains(mu)
			if got := EvaluateForest(AlgNaive, 1, f, g, mu); got != truth {
				t.Fatalf("naive q=%v clique=%v: %v vs %v", withQ, withClique, got, truth)
			}
			if got := EvaluateForest(AlgPebble, 1, f, g, mu); got != truth {
				t.Fatalf("pebble q=%v clique=%v: %v vs %v", withQ, withClique, got, truth)
			}
		}
	}
}

// The UNION-free dichotomy (Corollary 1): for T'_4, bw = dw = 1 and
// evaluation is exact with 2 pebbles, while the clique-child family
// has bw = k−1 and the pebble algorithm remains sound on it.
func TestPaperCorollary1Story(t *testing.T) {
	tk := gen.TkPrime(4)
	f := ptree.Forest{tk}
	bw := core.BranchTreewidth(tk)
	dw := core.DominationWidth(f)
	if bw != 1 || dw != 1 {
		t.Fatalf("bw=%d dw=%d", bw, dw)
	}
	g := gen.TkPrimeData(16, 4)
	mu := Mapping{"y": "b"}
	truth := core.EnumerateForest(f, g).Contains(mu)
	if got := EvaluateForest(AlgPebble, dw, f, g, mu); got != truth {
		t.Fatalf("pebble on T'_4: %v vs %v", got, truth)
	}

	ck := gen.CliqueChild(4)
	cf := ptree.Forest{ck}
	if w := core.BranchTreewidth(ck); w != 3 {
		t.Fatalf("bw(CliqueChild_4)=%d", w)
	}
	// Soundness for any k: on data where the true answer is negative
	// the pebble algorithm must reject even with k below the width.
	cg := gen.Turan(12, 4, "e")
	cg.AddTriple("anchor", "p0", "anchor")
	for i := 0; i < 12; i++ {
		cg.AddTriple("anchor", "e0", "n0")
	}
	cmu := Mapping{"u": "anchor"}
	truth = core.EnumerateForest(cf, cg).Contains(cmu)
	for kk := 1; kk <= 3; kk++ {
		got := EvaluateForest(AlgPebble, kk, cf, cg, cmu)
		if truth && !got {
			t.Fatalf("pebble k=%d rejected a member", kk)
		}
		if kk >= 3 && got != truth {
			t.Fatalf("pebble k=%d (≥ dw) must be exact: %v vs %v", kk, got, truth)
		}
	}
}

// Theorem 2 end-to-end through the public API.
func TestPaperTheorem2Story(t *testing.T) {
	h := NewUGraph(5)
	// 4-cycle plus chord: contains a triangle.
	h.AddEdge(0, 1)
	h.AddEdge(1, 2)
	h.AddEdge(2, 3)
	h.AddEdge(3, 0)
	h.AddEdge(0, 2)
	got, err := SolveCliqueViaReduction(3, h)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("triangle present")
	}
	// Remove the chord: 4-cycle is triangle-free.
	h2 := NewUGraph(5)
	h2.AddEdge(0, 1)
	h2.AddEdge(1, 2)
	h2.AddEdge(2, 3)
	h2.AddEdge(3, 0)
	got, err = SolveCliqueViaReduction(3, h2)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatal("4-cycle has no triangle")
	}
}
