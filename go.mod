module wdsparql

go 1.22
