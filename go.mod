module wdsparql

go 1.23
