package wdsparql

// Explain: the observability surface of the compile-time query
// planner. A prepared query can dump, as plain JSON-taggable structs,
// the pattern order the planner chose per wdPT node, the per-step
// cardinality estimates it chose them by, and the index shape each
// step probes. wdsparql -explain and wdserve's /sparql?explain=1 both
// serialise exactly this.

import "wdsparql/internal/core"

// PlanStep is one step of a node's planned pattern order.
type PlanStep struct {
	// Pattern is the triple pattern in SPARQL-ish text.
	Pattern string `json:"pattern"`
	// Index is the pattern's position in the node's original list.
	Index int `json:"index"`
	// Est is the planner's cardinality estimate for this step given
	// the slots bound by earlier steps and ancestor nodes.
	Est float64 `json:"est"`
	// Base is the exact posting-list cardinality of the pattern's
	// constants-only skeleton, straight off the CSR offsets.
	Base int `json:"base"`
	// Side names the index shape probed once the promised slots are
	// bound: the bound positions among "S", "P", "O", or "scan".
	Side string `json:"side"`
}

// PlanNode is the plan of one wdPT node: its patterns in source order,
// the node's FILTER conjuncts (each marked [pushed] — evaluated at bind
// time inside the node's search — or [deferred] — evaluated per emitted
// subtree solution), plus the planned execution order.
type PlanNode struct {
	Patterns []string    `json:"patterns"`
	Filters  []string    `json:"filters,omitempty"`
	Order    []PlanStep  `json:"order,omitempty"`
	Children []*PlanNode `json:"children,omitempty"`
}

// QueryPlan is the full explain output of a prepared query: one plan
// tree per tree of the wdPF, the SELECT projection if any, plus whether
// the engine executes with the planner on.
type QueryPlan struct {
	Planner bool `json:"planner"`
	// Projection lists the projected variables in declared order;
	// empty for a bare pattern (and for SELECT *, which projects
	// nothing away). Distinct reports output dedup on the projected
	// row.
	Projection []string    `json:"projection,omitempty"`
	Distinct   bool        `json:"distinct,omitempty"`
	Trees      []*PlanNode `json:"trees"`
}

// Explain returns the compile-time query plan of the prepared query.
// The plan is purely informational: executions with the planner off
// (or with the Planner ExecOption) yield the identical row stream.
func (q *PreparedQuery) Explain() *QueryPlan {
	qp := &QueryPlan{
		Planner:    q.eng.planner,
		Projection: q.prog.OutputVars(),
		Distinct:   q.prog.Distinct(),
	}
	for _, en := range q.prog.Explain() {
		qp.Trees = append(qp.Trees, planNodeOf(en))
	}
	return qp
}

func planNodeOf(en *core.ExplainNode) *PlanNode {
	pn := &PlanNode{Patterns: en.Patterns, Filters: en.Filters}
	for _, st := range en.Order {
		pn.Order = append(pn.Order, PlanStep{
			Pattern: st.Pattern, Index: st.Index, Est: st.Est, Base: st.Base, Side: st.Side,
		})
	}
	for _, c := range en.Children {
		pn.Children = append(pn.Children, planNodeOf(c))
	}
	return pn
}
