package wdsparql

// This file implements the query-cache seam of the engine: one small
// mutex-guarded LRU used at two levels of the prepare pipeline.
//
//   - The package-wide analysis cache (engine.go, analyze) memoises the
//     graph-independent static analysis per canonical pattern text. It
//     predates this file as a bounded map that stopped admitting new
//     patterns once full; promoting it to an LRU keeps long-running
//     servers adaptive — hot queries stay, one-off queries age out.
//   - The per-engine PreparedQuery cache (WithQueryCache, PrepareText)
//     memoises fully compiled queries keyed by the exact request text,
//     so a serving endpoint pays parse + analysis + compilation once
//     per distinct query, not per request.

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a string-keyed LRU with hit/miss counters. A nil
// *lruCache is a valid, always-missing cache, so callers need no
// enabled-or-not branches. Safe for concurrent use.
type lruCache[V any] struct {
	mu sync.Mutex
	// capacity is fixed at construction; ll's front is the most
	// recently used entry, and inserts beyond capacity evict ll.Back().
	capacity int
	entries  map[string]*list.Element
	ll       *list.List

	hits   atomic.Uint64
	misses atomic.Uint64
}

type lruEntry[V any] struct {
	key string
	val V
}

// newLRUCache returns an LRU holding at most capacity entries, or nil
// (the disabled cache) when capacity ≤ 0.
func newLRUCache[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		return nil
	}
	return &lruCache[V]{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		ll:       list.New(),
	}
}

// get returns the cached value for key, promoting it to most recently
// used, and records the hit or miss.
func (c *lruCache[V]) get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*lruEntry[V]).val, true
	}
	c.misses.Add(1)
	return zero, false
}

// add inserts key→val, evicting the least recently used entry beyond
// capacity, and returns the value cached under key. When a concurrent
// insert won the race, the first value wins and is returned — callers
// adopt it, so every holder of the key shares one cached value (the
// analysis cache relies on this to run the exponential width
// computations at most once per pattern).
func (c *lruCache[V]) add(key string, val V) V {
	if c == nil {
		return val
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val
	}
	c.entries[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*lruEntry[V]).key)
	}
	return val
}

// len returns the current number of entries.
func (c *lruCache[V]) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// CacheStats reports the state of an engine's query cache: cumulative
// hit/miss counters since the engine was built, current occupancy and
// the configured capacity. All zero when the cache is disabled.
type CacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
	Cap    int    `json:"cap"`
}

func (c *lruCache[V]) cacheStats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Size:   c.len(),
		Cap:    c.capacity,
	}
}
